// Integer inference engine tests: sub-byte pack/unpack round-trips, the
// u8 GEMM against integer and float references, layer-level parity of the
// compiled integer path with the fake-quant training path per bit-width
// (8/4/2), BatchNorm folding, pruning masks, and whole-model prediction
// agreement for VGG19 and ResNet18.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "backend/registry.h"
#include "infer/engine.h"
#include "infer/plan.h"
#include "models/mobilenet.h"
#include "models/resnet.h"
#include "models/vgg.h"
#include "nn/batchnorm.h"
#include "nn/conv2d.h"
#include "nn/init.h"
#include "nn/linear.h"
#include "tensor/bitpack.h"
#include "tensor/gemm.h"
#include "tensor/gemm_int8.h"
#include "tensor/ops.h"
#include "tensor/rng.h"

namespace adq::infer {
namespace {

// For a SINGLE layer the integer path sees the identical input tensor, so
// it produces the identical eqn-1 codes and the same real-arithmetic sum as
// the fake-quant float path (see plan.h) — differences are pure float
// rounding, and one tight relative bound serves every bit-width.
//
// Across a WHOLE model the comparison is statistical instead: each layer
// re-observes its input's min/max dynamically, so a ~1e-6 rounding drift
// can flip an activation sitting exactly on a code boundary to the adjacent
// code. Flips are rare but real, which is why the model-level contract (and
// the issue's acceptance bar) is top-1 agreement, not elementwise equality.
float parity_tol(const Tensor& ref) {
  const float mag =
      std::max(std::abs(min_value(ref)), std::abs(max_value(ref)));
  return 1e-4f * std::max(mag, 1.0f);
}

float mean_abs_diff(const Tensor& a, const Tensor& b) {
  EXPECT_EQ(a.shape(), b.shape());
  double total = 0.0;
  for (std::int64_t i = 0; i < a.numel(); ++i) {
    total += std::abs(a[i] - b[i]);
  }
  return a.numel() == 0 ? 0.0f
                        : static_cast<float>(total / static_cast<double>(a.numel()));
}

float max_abs_diff(const Tensor& a, const Tensor& b) {
  EXPECT_EQ(a.shape(), b.shape());
  float worst = 0.0f;
  for (std::int64_t i = 0; i < a.numel(); ++i) {
    worst = std::max(worst, std::abs(a[i] - b[i]));
  }
  return worst;
}

TEST(BitPack, CellBitsForRoundsToPowerOfTwo) {
  EXPECT_EQ(cell_bits_for(1), 1);
  EXPECT_EQ(cell_bits_for(2), 2);
  EXPECT_EQ(cell_bits_for(3), 4);
  EXPECT_EQ(cell_bits_for(4), 4);
  EXPECT_EQ(cell_bits_for(5), 8);
  EXPECT_EQ(cell_bits_for(8), 8);
}

TEST(BitPack, PackedBytes) {
  EXPECT_EQ(packed_bytes(16, 8), 16);
  EXPECT_EQ(packed_bytes(16, 4), 8);
  EXPECT_EQ(packed_bytes(16, 2), 4);
  EXPECT_EQ(packed_bytes(16, 1), 2);
  // Ragged tails round up.
  EXPECT_EQ(packed_bytes(17, 4), 9);
  EXPECT_EQ(packed_bytes(1, 1), 1);
  EXPECT_THROW(packed_bytes(8, 3), std::invalid_argument);
}

TEST(BitPack, RoundTripEveryCellWidth) {
  Rng rng(11);
  for (int cell : {1, 2, 4, 8}) {
    const std::int64_t count = 1000 + cell;  // exercise ragged tails
    std::vector<std::uint8_t> codes(static_cast<std::size_t>(count));
    for (auto& c : codes) {
      c = static_cast<std::uint8_t>(rng.uniform_int(0, (1 << cell) - 1));
    }
    std::vector<std::uint8_t> packed(
        static_cast<std::size_t>(packed_bytes(count, cell)));
    std::vector<std::uint8_t> back(static_cast<std::size_t>(count), 0xFF);
    pack_codes(codes.data(), count, cell, packed.data());
    unpack_codes(packed.data(), count, cell, back.data());
    EXPECT_EQ(codes, back) << "cell width " << cell;
  }
}

TEST(BitPack, PackedRowBytesAlignsEveryRow) {
  // 13 codes at 4-bit: flat packing shares byte 6 between rows; row-aligned
  // rows round up to 7 bytes each.
  EXPECT_EQ(packed_row_bytes(13, 4), 7);
  EXPECT_EQ(packed_row_bytes(13, 2), 4);
  EXPECT_EQ(packed_row_bytes(13, 1), 2);
  EXPECT_EQ(packed_row_bytes(13, 8), 13);
  EXPECT_EQ(packed_row_bytes(0, 4), 0);
}

// Directed tails: counts that are not multiples of the codes-per-byte must
// leave deterministic zero bits past the last code — the sub-byte GEMM
// kernels read whole bytes, so garbage tail bits would poison the panel
// expansion (and make byte-level golden comparisons flaky).
TEST(BitPack, RaggedTailBitsAreZero) {
  for (int cell : {1, 2, 4}) {
    const int per = 8 / cell;
    for (std::int64_t count : {1, per - 1, per + 1, 3 * per - 1}) {
      if (count <= 0) continue;
      std::vector<std::uint8_t> codes(static_cast<std::size_t>(count));
      for (std::size_t i = 0; i < codes.size(); ++i) {
        codes[i] = static_cast<std::uint8_t>((1 << cell) - 1);  // all-ones
      }
      std::vector<std::uint8_t> packed(
          static_cast<std::size_t>(packed_bytes(count, cell)), 0xFF);
      pack_codes(codes.data(), count, cell, packed.data());
      const std::int64_t used_bits = count * cell;
      const std::int64_t tail_bits = 8 * packed_bytes(count, cell) - used_bits;
      if (tail_bits > 0) {
        const std::uint8_t last = packed.back();
        const std::uint8_t mask =
            static_cast<std::uint8_t>(0xFFu << (8 - tail_bits));
        EXPECT_EQ(last & mask, 0)
            << "cell " << cell << " count " << count
            << ": tail bits of the last byte must pack to zero";
      }
    }
  }
}

TEST(BitPack, RepackRowsAlignedMatchesPerRowUnpack) {
  Rng rng(12);
  // Odd cols (13, 17) force flat rows to straddle byte boundaries; the
  // widening pairs cover the engine's 1 -> 2-bit promotion.
  const struct {
    int src_cell, dst_cell;
  } cases[] = {{4, 4}, {2, 2}, {1, 2}, {2, 4}, {1, 4}};
  for (const auto& c : cases) {
    for (std::int64_t cols : {1, 8, 13, 17}) {
      const std::int64_t rows = 5;
      std::vector<std::uint8_t> codes(
          static_cast<std::size_t>(rows * cols));
      for (auto& v : codes) {
        v = static_cast<std::uint8_t>(
            rng.uniform_int(0, (1 << c.src_cell) - 1));
      }
      std::vector<std::uint8_t> flat(
          static_cast<std::size_t>(packed_bytes(rows * cols, c.src_cell)));
      pack_codes(codes.data(), rows * cols, c.src_cell, flat.data());

      const std::int64_t rb = packed_row_bytes(cols, c.dst_cell);
      std::vector<std::uint8_t> aligned(static_cast<std::size_t>(rows * rb),
                                        0xFF);
      repack_rows_aligned(flat.data(), rows, cols, c.src_cell, c.dst_cell,
                          aligned.data());
      for (std::int64_t r = 0; r < rows; ++r) {
        std::vector<std::uint8_t> row(static_cast<std::size_t>(cols));
        unpack_codes(aligned.data() + r * rb, cols, c.dst_cell, row.data());
        for (std::int64_t j = 0; j < cols; ++j) {
          ASSERT_EQ(row[static_cast<std::size_t>(j)],
                    codes[static_cast<std::size_t>(r * cols + j)])
              << "src_cell " << c.src_cell << " dst_cell " << c.dst_cell
              << " cols " << cols << " row " << r << " col " << j;
        }
        // Row tails must be deterministic zeros (kernels read whole bytes).
        const std::int64_t tail_bits = 8 * rb - cols * c.dst_cell;
        if (tail_bits > 0) {
          const std::uint8_t mask =
              static_cast<std::uint8_t>(0xFFu << (8 - tail_bits));
          ASSERT_EQ(aligned[static_cast<std::size_t>((r + 1) * rb - 1)] & mask,
                    0);
        }
      }
    }
  }
  EXPECT_THROW(repack_rows_aligned(nullptr, 0, 0, 4, 2, nullptr),
               std::invalid_argument);
}

TEST(BitPack, RepackTransposeAlignedMatchesScalarTranspose) {
  Rng rng(13);
  for (int cell : {2, 4}) {
    const std::int64_t rows = 11, cols = 7;  // both ragged at every width
    std::vector<std::uint8_t> codes(static_cast<std::size_t>(rows * cols));
    for (auto& v : codes) {
      v = static_cast<std::uint8_t>(rng.uniform_int(0, (1 << cell) - 1));
    }
    std::vector<std::uint8_t> flat(
        static_cast<std::size_t>(packed_bytes(rows * cols, cell)));
    pack_codes(codes.data(), rows * cols, cell, flat.data());

    const std::int64_t rb = packed_row_bytes(rows, cell);
    std::vector<std::uint8_t> t(static_cast<std::size_t>(cols * rb), 0xFF);
    repack_transpose_aligned(flat.data(), rows, cols, cell, cell, t.data());
    for (std::int64_t jc = 0; jc < cols; ++jc) {
      std::vector<std::uint8_t> row(static_cast<std::size_t>(rows));
      unpack_codes(t.data() + jc * rb, rows, cell, row.data());
      for (std::int64_t r = 0; r < rows; ++r) {
        ASSERT_EQ(row[static_cast<std::size_t>(r)],
                  codes[static_cast<std::size_t>(r * cols + jc)])
            << "cell " << cell << " col " << jc << " row " << r;
      }
    }
  }
}

TEST(IntGemm, MatchesNaiveReference) {
  Rng rng(22);
  // Shapes straddling the 4x16 micro-tile and 256-deep panel boundaries.
  const std::int64_t shapes[][3] = {
      {1, 1, 1}, {4, 16, 8}, {5, 17, 3}, {7, 33, 129}, {12, 40, 300}};
  for (const auto& s : shapes) {
    const std::int64_t m = s[0], n = s[1], k = s[2];
    std::vector<std::uint8_t> a(static_cast<std::size_t>(m * k));
    std::vector<std::uint8_t> b(static_cast<std::size_t>(k * n));
    for (auto& v : a) v = static_cast<std::uint8_t>(rng.uniform_int(0, 255));
    for (auto& v : b) v = static_cast<std::uint8_t>(rng.uniform_int(0, 255));
    std::vector<std::int32_t> c(static_cast<std::size_t>(m * n), -7);
    igemm_u8_generic(m, n, k, a.data(), k, b.data(), n, c.data(), n);
    for (std::int64_t i = 0; i < m; ++i) {
      for (std::int64_t j = 0; j < n; ++j) {
        std::int32_t ref = 0;
        for (std::int64_t p = 0; p < k; ++p) {
          ref += static_cast<std::int32_t>(a[static_cast<std::size_t>(i * k + p)]) *
                 static_cast<std::int32_t>(b[static_cast<std::size_t>(p * n + j)]);
        }
        ASSERT_EQ(c[static_cast<std::size_t>(i * n + j)], ref)
            << m << "x" << n << "x" << k << " at (" << i << ", " << j << ")";
      }
    }
  }
}

TEST(IntGemm, RegisteredBackendsMatchGenericBitForBit) {
  // Every igemm implementation the registry enumerates (AVX2 vpmaddwd over
  // int16 pairs, VNNI vpdpbusd over offset s8 quads corrected by packed
  // column sums, ...) must agree exactly with the portable kernel — integer
  // accumulation has one right answer. Iterating the registry instead of
  // naming kernels means a newly registered backend is covered by merely
  // existing.
  Rng rng(55);
  const std::int64_t shapes[][3] = {
      {1, 1, 1},    {4, 16, 8},    {5, 17, 3},   {9, 1024, 27},
      {7, 33, 129}, {12, 40, 300}, {65, 64, 576}, {3, 4, 257}};
  for (const auto& s : shapes) {
    const std::int64_t m = s[0], n = s[1], k = s[2];
    std::vector<std::uint8_t> a(static_cast<std::size_t>(m * k));
    std::vector<std::uint8_t> b(static_cast<std::size_t>(k * n));
    for (auto& v : a) v = static_cast<std::uint8_t>(rng.uniform_int(0, 255));
    for (auto& v : b) v = static_cast<std::uint8_t>(rng.uniform_int(0, 255));
    std::vector<std::int32_t> ref(static_cast<std::size_t>(m * n), -1);
    igemm_u8_generic(m, n, k, a.data(), k, b.data(), n, ref.data(), n);

    std::vector<std::int32_t> got(static_cast<std::size_t>(m * n), -2);
    for (const backend::Backend* bk : backend::available_backends()) {
      std::fill(got.begin(), got.end(), -2);
      bk->igemm(m, n, k, a.data(), k, b.data(), n, got.data(), n);
      ASSERT_EQ(got, ref) << bk->name << " " << m << "x" << n << "x" << k;
    }
    // And whatever the active backend resolves to agrees as well.
    std::fill(got.begin(), got.end(), -4);
    backend::active().igemm(m, n, k, a.data(), k, b.data(), n, got.data(), n);
    ASSERT_EQ(got, ref) << "active " << m << "x" << n << "x" << k;
  }
}

TEST(IntGemm, MatchesFloatGemmOnSmallCodes) {
  // With k * 255^2 below 2^24 both GEMMs are exact, so they must agree
  // bit-for-bit after the float result is truncated back to int.
  Rng rng(33);
  const std::int64_t m = 9, n = 21, k = 100;
  std::vector<std::uint8_t> a(static_cast<std::size_t>(m * k));
  std::vector<std::uint8_t> b(static_cast<std::size_t>(k * n));
  Tensor af(Shape{m, k}), bf(Shape{k, n});
  for (std::int64_t i = 0; i < m * k; ++i) {
    a[static_cast<std::size_t>(i)] =
        static_cast<std::uint8_t>(rng.uniform_int(0, 255));
    af[i] = static_cast<float>(a[static_cast<std::size_t>(i)]);
  }
  for (std::int64_t i = 0; i < k * n; ++i) {
    b[static_cast<std::size_t>(i)] =
        static_cast<std::uint8_t>(rng.uniform_int(0, 255));
    bf[i] = static_cast<float>(b[static_cast<std::size_t>(i)]);
  }
  std::vector<std::int32_t> ci(static_cast<std::size_t>(m * n));
  backend::active().igemm(m, n, k, a.data(), k, b.data(), n, ci.data(), n);
  const Tensor cf = matmul(af, bf);
  for (std::int64_t i = 0; i < m * n; ++i) {
    EXPECT_EQ(static_cast<float>(ci[static_cast<std::size_t>(i)]), cf[i]);
  }
}

// --------------------------------------------------------------------------
// Layer-level parity: compiled plan vs the fake-quant training layer.
// --------------------------------------------------------------------------

// Conv inputs in these networks are post-ReLU, so their dynamic range
// starts at exactly 0 and the eqn-1 grid contains an exact zero — which
// makes the engine's padding code dequantize to 0.0, the same value the
// float path pads with. The tight parity tests use such inputs; the
// arbitrary-range border effect has its own test below.
Tensor post_relu_input(Shape shape, Rng& rng) {
  Tensor x(std::move(shape));
  rng.fill_normal(x, 0.1f, 1.0f);
  return relu(x);
}

TEST(InferConv, ParityPerBitwidth) {
  for (int bits : {8, 4, 2}) {
    Rng rng(100 + bits);
    nn::Conv2d conv(6, 10, 3, 1, 1, /*use_bias=*/true, "conv");
    nn::init_conv(conv, rng);
    rng.fill_uniform(conv.bias()->value, -0.3f, 0.3f);
    conv.set_bits(bits);
    conv.set_training(false);

    const Tensor x = post_relu_input(Shape{3, 6, 9, 9}, rng);
    const Tensor ref = conv.forward(x);

    const GemmLayerPlan l = plan_conv(conv, nullptr, /*fuse_relu=*/false);
    ASSERT_EQ(l.path, ExecPath::kInteger) << "bits " << bits;
    EXPECT_EQ(l.cell_bits, cell_bits_for(bits));
    const Tensor out = run_gemm_layer(l, x);
    EXPECT_LE(max_abs_diff(out, ref), parity_tol(ref)) << "bits " << bits;
  }
}

TEST(InferConv, ParityWithBatchNormFoldingAndRelu) {
  Rng rng(55);
  nn::Conv2d conv(4, 8, 3, 2, 1, /*use_bias=*/false, "conv");
  nn::init_conv(conv, rng);
  conv.set_bits(8);
  nn::BatchNorm2d bn(8);
  rng.fill_uniform(bn.gamma().value, 0.5f, 1.5f);
  rng.fill_uniform(bn.beta().value, -0.2f, 0.2f);
  // Non-trivial running statistics, as after real training: a few training
  // forwards over offset data move them away from the (0, 1) init.
  bn.set_training(true);
  for (int i = 0; i < 3; ++i) {
    Tensor warm(Shape{4, 8, 8, 8});
    rng.fill_normal(warm, 0.4f, 1.7f);
    bn.forward(warm);
  }
  conv.set_training(false);
  bn.set_training(false);

  const Tensor x = post_relu_input(Shape{2, 4, 8, 8}, rng);
  Tensor ref = bn.forward(conv.forward(x));
  ref = relu(ref);

  const GemmLayerPlan l = plan_conv(conv, &bn, /*fuse_relu=*/true);
  const Tensor out = run_gemm_layer(l, x);
  EXPECT_LE(max_abs_diff(out, ref), parity_tol(ref));
}

TEST(InferConv, PrunedChannelsAreZero) {
  Rng rng(66);
  nn::Conv2d conv(5, 12, 3, 1, 1, /*use_bias=*/true, "conv");
  nn::init_conv(conv, rng);
  conv.set_bits(8);
  conv.set_active_out_channels(7);
  conv.set_training(false);

  const Tensor x = post_relu_input(Shape{2, 5, 6, 6}, rng);
  const Tensor ref = conv.forward(x);
  const GemmLayerPlan l = plan_conv(conv, nullptr, /*fuse_relu=*/false);
  const Tensor out = run_gemm_layer(l, x);
  EXPECT_LE(max_abs_diff(out, ref), parity_tol(ref));
  // Masked channels are exactly zero on both paths.
  for (std::int64_t b = 0; b < 2; ++b) {
    for (std::int64_t c = 7; c < 12; ++c) {
      EXPECT_EQ(out.at(b, c, 3, 3), 0.0f);
    }
  }
}

TEST(InferConv, ArbitraryRangePaddingIsGridBounded) {
  // When the input range does not contain zero on-grid (e.g. a conv fed raw
  // data instead of ReLU output), the engine pads with the nearest-grid
  // code, off from the float path's exact 0.0 by at most half a step. The
  // border error is therefore bounded by step/2 * (weight magnitude * pad
  // taps); interior positions stay at float-rounding parity.
  Rng rng(44);
  nn::Conv2d conv(4, 6, 3, 1, 1, /*use_bias=*/false, "conv");
  nn::init_conv(conv, rng);
  conv.set_bits(8);
  conv.set_training(false);

  Tensor x(Shape{2, 4, 8, 8});
  rng.fill_normal(x, 0.3f, 1.0f);  // range straddles 0 but 0 is off-grid
  const Tensor ref = conv.forward(x);
  const GemmLayerPlan l = plan_conv(conv, nullptr, /*fuse_relu=*/false);
  const Tensor out = run_gemm_layer(l, x);

  const float step = (max_value(x) - min_value(x)) / 255.0f;
  const float wmag = std::max(std::abs(min_value(conv.weight().value)),
                              std::abs(max_value(conv.weight().value)));
  // A 3x3 corner patch has at most 5 padding taps.
  EXPECT_LE(max_abs_diff(out, ref), 0.5f * step * wmag * 5.0f + 1e-4f);
  // Interior positions (no padding in their patch) remain tightly matched.
  float interior_worst = 0.0f;
  for (std::int64_t b = 0; b < 2; ++b) {
    for (std::int64_t o = 0; o < 6; ++o) {
      for (std::int64_t y = 1; y < 7; ++y) {
        for (std::int64_t xo = 1; xo < 7; ++xo) {
          interior_worst = std::max(
              interior_worst, std::abs(out.at(b, o, y, xo) - ref.at(b, o, y, xo)));
        }
      }
    }
  }
  EXPECT_LE(interior_worst, parity_tol(ref));
}

TEST(InferLinear, ParityPerBitwidth) {
  for (int bits : {8, 4, 2}) {
    Rng rng(200 + bits);
    nn::Linear fc(24, 10, /*use_bias=*/true, "fc");
    nn::init_linear(fc, rng);
    fc.set_bits(bits);
    fc.set_training(false);

    Tensor x(Shape{5, 24});
    rng.fill_normal(x, 0.0f, 1.0f);
    const Tensor ref = fc.forward(x);

    const GemmLayerPlan l = plan_linear(fc, /*fuse_relu=*/false);
    ASSERT_EQ(l.path, ExecPath::kInteger) << "bits " << bits;
    const Tensor out = run_gemm_layer(l, x);
    EXPECT_LE(max_abs_diff(out, ref), parity_tol(ref)) << "bits " << bits;
  }
}

TEST(InferLinear, WideBitsFallBackToFloatAndMatchExactly) {
  Rng rng(77);
  nn::Linear fc(16, 6, /*use_bias=*/true, "fc");
  nn::init_linear(fc, rng);
  fc.set_bits(16);  // above the integer ceiling
  fc.set_training(false);
  Tensor x(Shape{4, 16});
  rng.fill_normal(x, 0.0f, 1.0f);
  const Tensor ref = fc.forward(x);

  const GemmLayerPlan l = plan_linear(fc, /*fuse_relu=*/false);
  EXPECT_EQ(l.path, ExecPath::kFloat);
  const Tensor out = run_gemm_layer(l, x);
  EXPECT_LE(max_abs_diff(out, ref), parity_tol(ref));
}

// --------------------------------------------------------------------------
// Whole-model parity.
// --------------------------------------------------------------------------

// Applies `bits` to every non-frozen unit (frozen ends keep their disabled
// quantizers, mirroring how Algorithm 1 leaves a converged model).
void set_uniform_bits(models::QuantizableModel& model, int bits) {
  quant::BitWidthPolicy policy = model.bit_policy();
  for (int i = 0; i < model.unit_count(); ++i) {
    if (!model.unit(i).frozen) policy.set(i, bits);
  }
  model.apply_bit_policy(policy);
}

double prediction_agreement(const std::vector<std::int64_t>& a,
                            const std::vector<std::int64_t>& b) {
  EXPECT_EQ(a.size(), b.size());
  std::size_t same = 0;
  for (std::size_t i = 0; i < a.size(); ++i) same += a[i] == b[i];
  return a.empty() ? 0.0 : static_cast<double>(same) / static_cast<double>(a.size());
}

TEST(InferEngine, VggPredictionsMatchFakeQuant) {
  Rng rng(7);
  models::VggConfig cfg;
  cfg.width_mult = 0.0625;
  cfg.num_classes = 10;
  auto model = models::build_vgg19(cfg, rng);
  set_uniform_bits(*model, 8);
  model->set_training(false);

  Tensor x(Shape{32, 3, 32, 32});
  rng.fill_normal(x, 0.0f, 1.0f);
  const Tensor ref_logits = model->forward(x);

  const IntInferenceEngine engine(compile(*model));
  EXPECT_GE(engine.plan().integer_layer_count(), 15);  // 15 non-frozen convs
  const Tensor logits = engine.forward(x);
  const float mag = std::max(std::abs(min_value(ref_logits)),
                             std::abs(max_value(ref_logits)));
  EXPECT_LE(mean_abs_diff(logits, ref_logits), 0.02f * std::max(mag, 1.0f));
  const double agree =
      prediction_agreement(engine.predict(x), argmax_rows(ref_logits));
  EXPECT_GE(agree, 0.95);
}

TEST(InferEngine, VggMixedPrecisionAgreement) {
  Rng rng(8);
  models::VggConfig cfg;
  cfg.width_mult = 0.0625;
  cfg.num_classes = 10;
  auto model = models::build_vgg19(cfg, rng);
  // Mixed 8/4/2 pattern over the non-frozen units, like a converged eqn-3
  // policy snapped to the hardware grid.
  quant::BitWidthPolicy policy = model->bit_policy();
  const int pattern[] = {8, 4, 2};
  for (int i = 0; i < model->unit_count(); ++i) {
    if (!model->unit(i).frozen) policy.set(i, pattern[i % 3]);
  }
  model->apply_bit_policy(policy);
  model->set_training(false);

  Tensor x(Shape{24, 3, 32, 32});
  rng.fill_normal(x, 0.0f, 1.0f);
  const Tensor ref_logits = model->forward(x);
  const IntInferenceEngine engine(compile(*model));
  // Sub-byte grids have coarse steps: an activation sitting on a code
  // boundary can land one 2-bit level away (a jump of a third of the
  // layer's range) under ~1e-6 of upstream rounding drift, and this
  // untrained model's random logits have small top-1 margins. Agreement is
  // therefore bounded well above chance (10 classes) but below the int8
  // bar; the per-bitwidth layer tests above pin the arithmetic itself.
  EXPECT_GE(prediction_agreement(engine.predict(x), argmax_rows(ref_logits)),
            0.7);
}

TEST(InferEngine, ResNetPredictionsMatchFakeQuant) {
  Rng rng(9);
  models::ResNetConfig cfg;
  cfg.width_mult = 0.0625;
  cfg.num_classes = 10;
  cfg.input_size = 16;
  auto model = models::build_resnet18(cfg, rng);
  set_uniform_bits(*model, 8);
  model->set_training(false);

  Tensor x(Shape{16, 3, 16, 16});
  rng.fill_normal(x, 0.0f, 1.0f);
  const Tensor ref_logits = model->forward(x);
  const IntInferenceEngine engine(compile(*model));
  const Tensor logits = engine.forward(x);
  const float mag = std::max(std::abs(min_value(ref_logits)),
                             std::abs(max_value(ref_logits)));
  EXPECT_LE(mean_abs_diff(logits, ref_logits), 0.02f * std::max(mag, 1.0f));
  EXPECT_GE(prediction_agreement(engine.predict(x), argmax_rows(ref_logits)),
            0.95);
}

// --------------------------------------------------------------------------
// Golden-logits cross-path regression.
// --------------------------------------------------------------------------
// The packed sub-byte execution path must be invisible in the output: for
// pinned seeds the logits are required to be BIT-identical (a) packed vs
// ADQ_SUBBYTE=0 and (b) across every backend runnable on this host. The
// GEMM kernels are bit-exact per the conformance harness and every other
// op in the backend tables is shared, so any hex mismatch here is an
// engine-integration bug (a wrong repack, stride, or accumulator read),
// never float rounding — which is why the comparison is on raw bits, not a
// tolerance.

std::string logits_hex(const Tensor& t) {
  std::string s;
  s.reserve(static_cast<std::size_t>(t.numel()) * 8);
  char word[16];
  const float* p = t.data();
  for (std::int64_t i = 0; i < t.numel(); ++i) {
    std::uint32_t bits = 0;
    std::memcpy(&bits, p + i, sizeof(bits));
    std::snprintf(word, sizeof(word), "%08x", bits);
    s += word;
  }
  return s;
}

// Scoped env override (engines latch ADQ_SUBBYTE at construction, so the
// variable only needs to hold while the constructor runs).
class ScopedEnv {
 public:
  ScopedEnv(const char* name, const char* value) : name_(name) {
    const char* old = std::getenv(name);
    had_ = old != nullptr;
    if (had_) old_ = old;
    setenv(name, value, 1);
  }
  ~ScopedEnv() {
    if (had_) {
      setenv(name_, old_.c_str(), 1);
    } else {
      unsetenv(name_);
    }
  }

 private:
  const char* name_;
  bool had_ = false;
  std::string old_;
};

class ScopedBackend {
 public:
  explicit ScopedBackend(const backend::Backend* bk)
      : prev_(backend::exchange_backend_override(bk)) {}
  ~ScopedBackend() { backend::exchange_backend_override(prev_); }

 private:
  const backend::Backend* prev_;
};

struct GoldenModel {
  const char* name;
  std::uint64_t seed;
};

std::unique_ptr<models::QuantizableModel> build_golden_model(const char* name,
                                                             Rng& rng) {
  if (std::strcmp(name, "vgg19") == 0) {
    models::VggConfig cfg;
    cfg.width_mult = 0.0625;
    cfg.num_classes = 10;
    return models::build_vgg19(cfg, rng);
  }
  if (std::strcmp(name, "resnet18") == 0) {
    models::ResNetConfig cfg;
    cfg.width_mult = 0.0625;
    cfg.num_classes = 10;
    cfg.input_size = 16;
    return models::build_resnet18(cfg, rng);
  }
  models::MobileNetConfig cfg;
  cfg.width_mult = 0.25;
  cfg.num_classes = 10;
  return models::build_mobilenet_small(cfg, rng);
}

Tensor golden_input(const char* name, Rng& rng) {
  const std::int64_t hw = std::strcmp(name, "resnet18") == 0 ? 16 : 32;
  Tensor x(Shape{4, 3, hw, hw});
  rng.fill_normal(x, 0.0f, 1.0f);
  return x;
}

void apply_bit_setting(models::QuantizableModel& model, const char* setting) {
  if (std::strcmp(setting, "mixed") == 0) {
    quant::BitWidthPolicy policy = model.bit_policy();
    const int pattern[] = {8, 4, 2};
    for (int i = 0; i < model.unit_count(); ++i) {
      if (!model.unit(i).frozen) policy.set(i, pattern[i % 3]);
    }
    model.apply_bit_policy(policy);
    return;
  }
  set_uniform_bits(model, std::atoi(setting + 3));  // "intN"
}

TEST(GoldenLogits, PackedMatchesUnpackedAcrossEveryBackend) {
  const GoldenModel kModels[] = {
      {"vgg19", 101}, {"resnet18", 102}, {"mobilenet_small", 103}};
  const char* kSettings[] = {"int8", "int4", "int2", "mixed"};

  for (const GoldenModel& gm : kModels) {
    for (const char* setting : kSettings) {
      Rng rng(gm.seed);
      auto model = build_golden_model(gm.name, rng);
      apply_bit_setting(*model, setting);
      model->set_training(false);
      const Tensor x = golden_input(gm.name, rng);
      const InferencePlan plan = compile(*model);

      std::string golden;  // first backend's packed logits
      for (const backend::Backend* bk : backend::available_backends()) {
        const ScopedBackend scope(bk);
        const std::string where =
            std::string(gm.name) + "/" + setting + "/" + bk->name;
        std::string unpacked, packed;
        {
          const ScopedEnv env("ADQ_SUBBYTE", "0");
          const IntInferenceEngine engine(plan);
          EXPECT_FALSE(engine.subbyte_enabled());
          unpacked = logits_hex(engine.forward(x));
        }
        {
          const ScopedEnv env("ADQ_SUBBYTE", "1");
          const IntInferenceEngine engine(plan);
          EXPECT_TRUE(engine.subbyte_enabled());
          packed = logits_hex(engine.forward(x));
        }
        EXPECT_EQ(packed, unpacked)
            << where << ": packed weight cells changed the logits";
        if (golden.empty()) {
          golden = packed;
        } else {
          EXPECT_EQ(packed, golden)
              << where << ": logits differ from the first backend's";
        }
      }
    }
  }
}

TEST(GoldenLogits, PackedActivationSlotsMatchFloatSlotsAcrossEveryBackend) {
  // Compressed activation slots (ADQ_ACT_BITS) store exactly the codes the
  // consuming GEMM's own quantize_act would compute, so the packed-slot
  // plan must be BIT-identical to the float-slot plan of the same model —
  // on every backend. Any hex mismatch is a pack/unpack or grid bug, never
  // rounding.
  const GoldenModel kModels[] = {
      {"vgg19", 111}, {"resnet18", 112}, {"mobilenet_small", 113}};
  const char* kSettings[] = {"int8", "int4", "mixed"};

  for (const GoldenModel& gm : kModels) {
    for (const char* setting : kSettings) {
      Rng rng(gm.seed);
      auto model = build_golden_model(gm.name, rng);
      apply_bit_setting(*model, setting);
      model->set_training(false);
      const Tensor x = golden_input(gm.name, rng);

      InferencePlan packed_plan, float_plan;
      {
        const ScopedEnv env("ADQ_ACT_BITS", "on");
        packed_plan = compile(*model);
      }
      {
        const ScopedEnv env("ADQ_ACT_BITS", "off");
        float_plan = compile(*model);
      }
      int packed_ops = 0;
      for (const OpPlan& op : packed_plan.ops) {
        packed_ops += op.out_act_bits > 0;
      }
      EXPECT_GT(packed_ops, 0) << gm.name << "/" << setting
                               << ": nothing compressed — vacuous parity";

      std::string golden;
      for (const backend::Backend* bk : backend::available_backends()) {
        const ScopedBackend scope(bk);
        const std::string where =
            std::string(gm.name) + "/" + setting + "/" + bk->name;
        const IntInferenceEngine packed_engine(packed_plan);
        const IntInferenceEngine float_engine(float_plan);
        const std::string packed = logits_hex(packed_engine.forward(x));
        const std::string floats = logits_hex(float_engine.forward(x));
        EXPECT_EQ(packed, floats)
            << where << ": packed activation slots changed the logits";
        if (golden.empty()) {
          golden = packed;
        } else {
          EXPECT_EQ(packed, golden)
              << where << ": logits differ from the first backend's";
        }
      }
    }
  }
}

// With packing on, the engine's steady-state weight views keep the <= 4-bit
// layers' packed cells, so the resident execution bytes must shrink versus
// the legacy unpack-to-u8 views of the same plan.
TEST(InferEngine, PackedExecViewShrinksSteadyStateWeights) {
  Rng rng(11);
  models::VggConfig cfg;
  cfg.width_mult = 0.0625;
  cfg.num_classes = 10;
  auto model = models::build_vgg19(cfg, rng);
  set_uniform_bits(*model, 4);
  model->set_training(false);
  const InferencePlan plan = compile(*model);

  std::int64_t unpacked_bytes = 0, packed_bytes = 0;
  {
    const ScopedEnv env("ADQ_SUBBYTE", "0");
    unpacked_bytes = IntInferenceEngine(plan).exec_weight_bytes();
  }
  {
    const ScopedEnv env("ADQ_SUBBYTE", "1");
    packed_bytes = IntInferenceEngine(plan).exec_weight_bytes();
  }
  // 4-bit cells halve the byte-per-code views (frozen float ends shared).
  EXPECT_LT(packed_bytes, unpacked_bytes);
}

TEST(InferEngine, SubByteWeightsShrinkThePlan) {
  Rng rng(10);
  models::VggConfig cfg;
  cfg.width_mult = 0.0625;
  cfg.num_classes = 10;
  auto model = models::build_vgg19(cfg, rng);

  set_uniform_bits(*model, 8);
  const std::size_t bytes8 = compile(*model).weight_bytes();
  set_uniform_bits(*model, 4);
  const std::size_t bytes4 = compile(*model).weight_bytes();
  set_uniform_bits(*model, 2);
  const std::size_t bytes2 = compile(*model).weight_bytes();

  // The frozen float ends are shared, so the ordering is strict but not a
  // clean 2x per halving.
  EXPECT_LT(bytes4, bytes8);
  EXPECT_LT(bytes2, bytes4);
  // The 8-bit plan stores one byte per weight in the integer layers, i.e.
  // < 1/2 of the all-float footprint even with the frozen 16-bit ends.
  set_uniform_bits(*model, 16);
  const std::size_t bytes_float = compile(*model).weight_bytes();
  EXPECT_LT(bytes8, bytes_float / 2);
}

}  // namespace
}  // namespace adq::infer
