// Unit tests for the tensor substrate: shapes, storage, RNG determinism,
// GEMM against a naive reference, im2col/col2im adjointness, and the
// elementwise/reduction ops.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cmath>
#include <numeric>
#include <stdexcept>
#include <thread>
#include <vector>

#include "tensor/gemm.h"
#include "tensor/im2col.h"
#include "tensor/ops.h"
#include "tensor/parallel.h"
#include "tensor/rng.h"
#include "tensor/shape.h"
#include "tensor/tensor.h"

namespace adq {
namespace {

TEST(Shape, BasicProperties) {
  const Shape s{2, 3, 4};
  EXPECT_EQ(s.rank(), 3);
  EXPECT_EQ(s.numel(), 24);
  EXPECT_EQ(s.dim(0), 2);
  EXPECT_EQ(s.dim(-1), 4);
  EXPECT_EQ(s.stride(0), 12);
  EXPECT_EQ(s.stride(2), 1);
  EXPECT_EQ(s.to_string(), "[2, 3, 4]");
}

TEST(Shape, ScalarShape) {
  const Shape s;
  EXPECT_EQ(s.rank(), 0);
  EXPECT_EQ(s.numel(), 1);
}

TEST(Shape, Equality) {
  EXPECT_EQ(Shape({2, 3}), Shape({2, 3}));
  EXPECT_NE(Shape({2, 3}), Shape({3, 2}));
  EXPECT_NE(Shape({2, 3}), Shape({2, 3, 1}));
}

TEST(Shape, WithDim) {
  const Shape s{2, 3};
  EXPECT_EQ(s.with_dim(1, 7), Shape({2, 7}));
  EXPECT_EQ(s.with_dim(-1, 9), Shape({2, 9}));
}

TEST(Shape, InvalidAxisThrows) {
  const Shape s{2, 3};
  EXPECT_THROW(s.dim(2), std::out_of_range);
  EXPECT_THROW(s.dim(-3), std::out_of_range);
}

TEST(Shape, NegativeDimThrows) {
  EXPECT_THROW(Shape({2, -1}), std::invalid_argument);
}

TEST(Shape, PrependedAndTail) {
  const Shape sample{3, 32, 32};
  const Shape batch = sample.prepended(16);
  EXPECT_EQ(batch, (Shape{16, 3, 32, 32}));
  EXPECT_EQ(batch.tail(), sample);
  EXPECT_EQ(Shape{5}.tail().rank(), 0);
  EXPECT_THROW(Shape{}.tail(), std::out_of_range);
  EXPECT_THROW(sample.prepended(-1), std::invalid_argument);
  const Shape full{1, 2, 3, 4, 5, 6};  // already at kMaxRank
  EXPECT_THROW(full.prepended(7), std::invalid_argument);
}

TEST(Ops, StackSamplesAndTakeSample) {
  Tensor a(Shape{2, 3});
  Tensor b(Shape{2, 3});
  for (std::int64_t i = 0; i < 6; ++i) {
    a[i] = static_cast<float>(i);
    b[i] = static_cast<float>(100 + i);
  }
  const Tensor batch = stack_samples({&a, &b});
  EXPECT_EQ(batch.shape(), (Shape{2, 2, 3}));
  for (std::int64_t i = 0; i < 6; ++i) {
    EXPECT_EQ(batch[i], a[i]);
    EXPECT_EQ(batch[6 + i], b[i]);
  }
  const Tensor back = take_sample(batch, 1);
  EXPECT_EQ(back.shape(), (Shape{2, 3}));
  for (std::int64_t i = 0; i < 6; ++i) EXPECT_EQ(back[i], b[i]);

  EXPECT_THROW(stack_samples({}), std::invalid_argument);
  Tensor wrong(Shape{3, 2});
  EXPECT_THROW(stack_samples({&a, &wrong}), std::invalid_argument);
  EXPECT_THROW(take_sample(batch, 2), std::out_of_range);
  EXPECT_THROW(take_sample(batch, -1), std::out_of_range);
}

TEST(Im2col, StridedVariantMatchesContiguous) {
  // Two "images" lowered as adjacent column blocks of one slab must hold
  // exactly the per-image contiguous lowering — the invariant the batched
  // conv path relies on. Covers the 3x3/s1/p1 fast path and a strided
  // geometry.
  Rng rng(77);
  ConvGeometry geos[2];
  geos[0].channels = 3; geos[0].in_h = 6; geos[0].in_w = 6;
  geos[0].kernel_h = 3; geos[0].kernel_w = 3; geos[0].stride = 1;
  geos[0].pad = 1;
  geos[1].channels = 2; geos[1].in_h = 9; geos[1].in_w = 7;
  geos[1].kernel_h = 3; geos[1].kernel_w = 2; geos[1].stride = 2;
  geos[1].pad = 1;
  for (const ConvGeometry& g : geos) {
    const std::int64_t chw = g.channels * g.in_h * g.in_w;
    const std::int64_t ohw = g.out_h() * g.out_w(), P = g.patch_size();
    std::vector<std::uint8_t> im(static_cast<std::size_t>(2 * chw));
    for (auto& v : im) v = static_cast<std::uint8_t>(rng.uniform_int(0, 255));

    std::vector<std::uint8_t> slab(static_cast<std::size_t>(P * 2 * ohw), 0xEE);
    std::vector<std::uint8_t> single(static_cast<std::size_t>(P * ohw));
    for (std::int64_t b = 0; b < 2; ++b) {
      im2col_u8(im.data() + b * chw, g, slab.data() + b * ohw, 2 * ohw, 7);
      im2col_u8(im.data() + b * chw, g, single.data(), 7);
      for (std::int64_t r = 0; r < P; ++r) {
        for (std::int64_t s = 0; s < ohw; ++s) {
          ASSERT_EQ(slab[static_cast<std::size_t>(r * 2 * ohw + b * ohw + s)],
                    single[static_cast<std::size_t>(r * ohw + s)])
              << "b=" << b << " r=" << r << " s=" << s;
        }
      }
    }
  }
}

TEST(Im2col, LoweringMatchesBruteForceDefinition) {
  // Element-by-element check against the im2col definition, over
  // geometries chosen to hit every code path: the 3x3/s1/p1 fused
  // specialisation, the generic unit-stride pad/copy/pad branch (5x5/p2,
  // 3x3/p0, asymmetric kernel), and the strided fallback.
  Rng rng(88);
  struct G { std::int64_t c, h, w, kh, kw, s, p; };
  const G cases[] = {
      {3, 8, 8, 3, 3, 1, 1},   // fused specialisation
      {2, 7, 9, 5, 5, 1, 2},   // generic unit stride, wide kernel
      {3, 6, 6, 3, 3, 1, 0},   // generic unit stride, no padding
      {1, 5, 4, 1, 2, 1, 1},   // generic unit stride, asymmetric kernel
      {2, 9, 7, 3, 3, 2, 1},   // strided fallback
  };
  for (const G& gc : cases) {
    ConvGeometry g;
    g.channels = gc.c; g.in_h = gc.h; g.in_w = gc.w;
    g.kernel_h = gc.kh; g.kernel_w = gc.kw; g.stride = gc.s; g.pad = gc.p;
    const std::int64_t oh = g.out_h(), ow = g.out_w(), P = g.patch_size();
    const std::uint8_t pad_code = 9;

    std::vector<std::uint8_t> im(static_cast<std::size_t>(gc.c * gc.h * gc.w));
    for (auto& v : im) v = static_cast<std::uint8_t>(rng.uniform_int(0, 255));
    std::vector<std::uint8_t> col(static_cast<std::size_t>(P * oh * ow), 0xCC);
    im2col_u8(im.data(), g, col.data(), pad_code);

    std::int64_t row = 0;
    for (std::int64_t c = 0; c < gc.c; ++c) {
      for (std::int64_t kh = 0; kh < gc.kh; ++kh) {
        for (std::int64_t kw = 0; kw < gc.kw; ++kw, ++row) {
          for (std::int64_t y = 0; y < oh; ++y) {
            for (std::int64_t x = 0; x < ow; ++x) {
              const std::int64_t iy = y * gc.s + kh - gc.p;
              const std::int64_t ix = x * gc.s + kw - gc.p;
              const bool inside =
                  iy >= 0 && iy < gc.h && ix >= 0 && ix < gc.w;
              const std::uint8_t want =
                  inside ? im[static_cast<std::size_t>((c * gc.h + iy) * gc.w +
                                                       ix)]
                         : pad_code;
              ASSERT_EQ(col[static_cast<std::size_t>(row * oh * ow + y * ow +
                                                     x)],
                        want)
                  << "geometry " << gc.kh << "x" << gc.kw << "/s" << gc.s
                  << "/p" << gc.p << " at row " << row << " y " << y << " x "
                  << x;
            }
          }
        }
      }
    }
  }
}

TEST(Im2col, WorkspaceGrowsAndReuses) {
  Im2colWorkspace ws;
  std::uint8_t* p8 = ws.ensure_u8(100);
  ASSERT_NE(p8, nullptr);
  EXPECT_EQ(ws.ensure_u8(50), p8);  // no shrink, same buffer
  EXPECT_GE(ws.u8.size(), 100u);
  float* pf = ws.ensure_f32(64);
  ASSERT_NE(pf, nullptr);
  EXPECT_EQ(ws.ensure_f32(64), pf);
}

TEST(Tensor, ZeroInitialised) {
  const Tensor t(Shape{3, 4});
  EXPECT_EQ(t.numel(), 12);
  for (std::int64_t i = 0; i < t.numel(); ++i) EXPECT_EQ(t[i], 0.0f);
}

TEST(Tensor, FillAndAt2d) {
  Tensor t(Shape{2, 3});
  t.fill(2.5f);
  EXPECT_EQ(t.at(1, 2), 2.5f);
  t.at(0, 1) = -1.0f;
  EXPECT_EQ(t[1], -1.0f);
}

TEST(Tensor, At4dIndexing) {
  Tensor t(Shape{2, 3, 4, 5});
  t.at(1, 2, 3, 4) = 9.0f;
  EXPECT_EQ(t[t.numel() - 1], 9.0f);
}

TEST(Tensor, ReshapePreservesData) {
  Tensor t(Shape{2, 6});
  std::iota(t.data(), t.data() + t.numel(), 0.0f);
  const Tensor r = t.reshaped(Shape{3, 4});
  EXPECT_EQ(r.shape(), Shape({3, 4}));
  EXPECT_EQ(r[7], 7.0f);
}

TEST(Tensor, ReshapeNumelMismatchThrows) {
  Tensor t(Shape{2, 3});
  EXPECT_THROW(t.reshape(Shape{4, 2}), std::invalid_argument);
}

TEST(Tensor, ConstructFromVectorChecksSize) {
  EXPECT_THROW(Tensor(Shape{2, 2}, std::vector<float>{1, 2, 3}),
               std::invalid_argument);
}

TEST(Rng, DeterministicFromSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.uniform(), b.uniform());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  bool any_diff = false;
  for (int i = 0; i < 16; ++i) any_diff |= a.uniform() != b.uniform();
  EXPECT_TRUE(any_diff);
}

TEST(Rng, UniformRange) {
  Rng rng(3);
  for (int i = 0; i < 1000; ++i) {
    const float v = rng.uniform(-2.0f, 5.0f);
    EXPECT_GE(v, -2.0f);
    EXPECT_LT(v, 5.0f);
  }
}

TEST(Rng, NormalMoments) {
  Rng rng(4);
  double s = 0.0, s2 = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    const double v = rng.normal(1.0f, 2.0f);
    s += v;
    s2 += v * v;
  }
  const double mean = s / n;
  const double stddev = std::sqrt(s2 / n - mean * mean);
  EXPECT_NEAR(mean, 1.0, 0.1);
  EXPECT_NEAR(stddev, 2.0, 0.1);
}

TEST(Rng, ShuffleIsPermutation) {
  Rng rng(5);
  std::vector<std::int64_t> v(100);
  std::iota(v.begin(), v.end(), 0);
  rng.shuffle(v);
  std::vector<std::int64_t> sorted = v;
  std::sort(sorted.begin(), sorted.end());
  for (std::int64_t i = 0; i < 100; ++i) EXPECT_EQ(sorted[static_cast<std::size_t>(i)], i);
}

TEST(Rng, ForkIndependence) {
  Rng parent(7);
  Rng child = parent.fork();
  // Child stream must not replay the parent's stream.
  Rng parent_copy(7);
  parent_copy.fork();
  EXPECT_EQ(parent.uniform(), parent_copy.uniform());
  (void)child;
}

TEST(Parallel, CoversRangeExactlyOnce) {
  std::vector<std::atomic<int>> hits(1000);
  parallel_for(0, 1000, [&](std::int64_t b, std::int64_t e) {
    for (std::int64_t i = b; i < e; ++i) hits[static_cast<std::size_t>(i)]++;
  });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(Parallel, NestedCallsRunSerially) {
  std::atomic<int> total{0};
  parallel_for(0, 8, [&](std::int64_t b, std::int64_t e) {
    for (std::int64_t i = b; i < e; ++i) {
      parallel_for(0, 10, [&](std::int64_t ib, std::int64_t ie) {
        total += static_cast<int>(ie - ib);
      });
    }
  });
  EXPECT_EQ(total.load(), 80);
}

TEST(Parallel, EmptyRangeIsNoop) {
  bool called = false;
  parallel_for(5, 5, [&](std::int64_t, std::int64_t) { called = true; });
  EXPECT_FALSE(called);
}

TEST(Parallel, ReversedRangeIsNoop) {
  bool called = false;
  parallel_for(10, 2, [&](std::int64_t, std::int64_t) { called = true; });
  EXPECT_FALSE(called);
}

TEST(Parallel, GrainLargerThanRangeRunsOnceInline) {
  // A grain that covers the whole range must produce exactly one serial
  // invocation of [begin, end) on the calling thread.
  const std::thread::id caller = std::this_thread::get_id();
  int calls = 0;
  std::int64_t seen_begin = -1, seen_end = -1;
  std::thread::id seen_thread;
  parallel_for(
      3, 11,
      [&](std::int64_t b, std::int64_t e) {
        ++calls;
        seen_begin = b;
        seen_end = e;
        seen_thread = std::this_thread::get_id();
      },
      /*grain=*/100);
  EXPECT_EQ(calls, 1);
  EXPECT_EQ(seen_begin, 3);
  EXPECT_EQ(seen_end, 11);
  EXPECT_EQ(seen_thread, caller);
}

TEST(Parallel, SingleThreadFallbackIsSerial) {
  // With a single-worker pool every chunk must run inline on the caller.
  // The pool reads ADQ_THREADS once at creation, so this property is only
  // observable in a process launched with ADQ_THREADS=1; ctest registers
  // such a run as `parallel_serial_fallback` (see tests/CMakeLists.txt).
  // On multi-worker pools the range still covers exactly once, so the
  // coverage half of the assertion runs everywhere.
  const bool single = parallel_thread_count() == 1;
  const std::thread::id caller = std::this_thread::get_id();
  std::vector<std::atomic<int>> hits(64);
  std::atomic<bool> off_thread{false};
  parallel_for(0, 64, [&](std::int64_t b, std::int64_t e) {
    if (std::this_thread::get_id() != caller) off_thread = true;
    for (std::int64_t i = b; i < e; ++i) hits[static_cast<std::size_t>(i)]++;
  });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
  if (single) {
    EXPECT_FALSE(off_thread.load());
  }
}

TEST(Parallel, ThreadCountGrammarAcceptsIntegers) {
  EXPECT_EQ(detail::parse_thread_count("1"), 1);
  EXPECT_EQ(detail::parse_thread_count("8"), 8);
  EXPECT_EQ(detail::parse_thread_count("4096"), 4096);
}

TEST(Parallel, ThreadCountGrammarRejectsGarbage) {
  // atoi used to map every one of these to a silent fallback; the strict
  // grammar must refuse them with a precise error instead.
  for (const char* bad : {"abc", "4x", "-2", "0", "", "1.5", "1e3", "+",
                          "99999999999999999999", "4097"}) {
    EXPECT_THROW(detail::parse_thread_count(bad), std::invalid_argument)
        << "accepted ADQ_THREADS='" << bad << "'";
  }
}

TEST(Parallel, ConcurrentTopLevelCallersProduceDisjointOutputs) {
  // M independent top-level parallel_for regions in flight at once — the
  // concurrent-scheduler contract. Each caller fills its OWN buffer with a
  // caller-specific pattern; any cross-job chunk mixup (a worker applying
  // job A's fn to job B's range, a corrupted cursor, a latch releasing
  // early) corrupts a buffer. Several rounds shake out interleavings.
  constexpr int kCallers = 4;
  constexpr std::int64_t kN = 20'000;
  for (int round = 0; round < 8; ++round) {
    std::vector<std::vector<std::int64_t>> out(
        kCallers, std::vector<std::int64_t>(kN, -1));
    std::vector<std::thread> callers;
    for (int c = 0; c < kCallers; ++c) {
      callers.emplace_back([c, &out] {
        const std::int64_t base = static_cast<std::int64_t>(c + 1) * 1'000'000;
        parallel_for(0, kN, [&](std::int64_t b, std::int64_t e) {
          for (std::int64_t i = b; i < e; ++i) {
            out[static_cast<std::size_t>(c)][static_cast<std::size_t>(i)] =
                base + i;
          }
        }, /*grain=*/64);
      });
    }
    for (auto& t : callers) t.join();
    for (int c = 0; c < kCallers; ++c) {
      const std::int64_t base = static_cast<std::int64_t>(c + 1) * 1'000'000;
      for (std::int64_t i = 0; i < kN; ++i) {
        ASSERT_EQ(out[static_cast<std::size_t>(c)][static_cast<std::size_t>(i)],
                  base + i)
            << "caller " << c << " index " << i << " round " << round;
      }
    }
  }
}

TEST(Parallel, OversubscribedCallersComplete) {
  // More concurrent callers than pool threads: every caller drains its own
  // job, so completion must never depend on a pool worker being free. A
  // deadlock here trips the suite timeout.
  const int callers = 2 * parallel_thread_count() + 2;
  std::vector<std::int64_t> sums(static_cast<std::size_t>(callers), 0);
  std::vector<std::thread> threads;
  for (int c = 0; c < callers; ++c) {
    threads.emplace_back([c, &sums] {
      std::atomic<std::int64_t> sum{0};
      parallel_for(0, 4'096, [&](std::int64_t b, std::int64_t e) {
        std::int64_t local = 0;
        for (std::int64_t i = b; i < e; ++i) local += i;
        sum += local;
      }, /*grain=*/32);
      sums[static_cast<std::size_t>(c)] = sum.load();
    });
  }
  for (auto& t : threads) t.join();
  for (const std::int64_t s : sums) EXPECT_EQ(s, 4'095 * 4'096 / 2);
}

TEST(Parallel, NestedCallsInsideConcurrentCallersStaySerial) {
  // The nested-serial fallback must hold inside every concurrently live
  // region, not just for a lone caller.
  constexpr int kCallers = 3;
  std::vector<std::thread> callers;
  std::vector<std::atomic<int>> totals(kCallers);
  for (auto& t : totals) t = 0;
  for (int c = 0; c < kCallers; ++c) {
    callers.emplace_back([c, &totals] {
      parallel_for(0, 8, [&](std::int64_t b, std::int64_t e) {
        for (std::int64_t i = b; i < e; ++i) {
          parallel_for(0, 10, [&](std::int64_t ib, std::int64_t ie) {
            totals[static_cast<std::size_t>(c)] += static_cast<int>(ie - ib);
          });
        }
      });
    });
  }
  for (auto& t : callers) t.join();
  for (const auto& t : totals) EXPECT_EQ(t.load(), 80);
}

TEST(Parallel, ScopedThreadBudgetCapsAndRestores) {
  const int pool_n = parallel_thread_count();
  EXPECT_EQ(parallel_effective_threads(), pool_n);
  {
    ScopedThreadBudget one(1);
    EXPECT_EQ(parallel_effective_threads(), 1);
    // Budget 1 runs dispatches inline on the caller, whole range at once.
    const std::thread::id caller = std::this_thread::get_id();
    int calls = 0;
    bool off_thread = false;
    parallel_for(0, 10'000, [&](std::int64_t, std::int64_t) {
      ++calls;
      off_thread |= std::this_thread::get_id() != caller;
    });
    EXPECT_EQ(calls, 1);
    EXPECT_FALSE(off_thread);
    {
      ScopedThreadBudget two(2);
      EXPECT_EQ(parallel_effective_threads(), std::min(2, pool_n));
    }
    EXPECT_EQ(parallel_effective_threads(), 1);  // inner guard restored
  }
  EXPECT_EQ(parallel_effective_threads(), pool_n);
  EXPECT_THROW(ScopedThreadBudget{-1}, std::invalid_argument);
}

TEST(Parallel, PoolStatsCountDispatches) {
  const ParallelPoolStats before = parallel_pool_stats();
  EXPECT_EQ(before.pool_threads, parallel_thread_count());
  parallel_for(0, 10'000, [](std::int64_t, std::int64_t) {}, /*grain=*/1);
  const ParallelPoolStats after = parallel_pool_stats();
  if (parallel_thread_count() > 1) {
    EXPECT_GT(after.jobs_dispatched, before.jobs_dispatched);
  } else {
    // Serial fast path: nothing reaches the scheduler.
    EXPECT_EQ(after.jobs_dispatched, before.jobs_dispatched);
  }
  EXPECT_EQ(after.live_jobs, 0);  // nothing in flight between dispatches
}

// Naive reference GEMM for validation.
Tensor naive_matmul(const Tensor& a, const Tensor& b, bool ta, bool tb) {
  const std::int64_t m = ta ? a.shape().dim(1) : a.shape().dim(0);
  const std::int64_t k = ta ? a.shape().dim(0) : a.shape().dim(1);
  const std::int64_t n = tb ? b.shape().dim(0) : b.shape().dim(1);
  Tensor c(Shape{m, n});
  for (std::int64_t i = 0; i < m; ++i) {
    for (std::int64_t j = 0; j < n; ++j) {
      double s = 0.0;
      for (std::int64_t p = 0; p < k; ++p) {
        const float av = ta ? a.at(p, i) : a.at(i, p);
        const float bv = tb ? b.at(j, p) : b.at(p, j);
        s += static_cast<double>(av) * bv;
      }
      c.at(i, j) = static_cast<float>(s);
    }
  }
  return c;
}

class GemmShapes : public ::testing::TestWithParam<std::tuple<int, int, int, bool, bool>> {};

TEST_P(GemmShapes, MatchesNaive) {
  const auto [m, n, k, ta, tb] = GetParam();
  Rng rng(11);
  Tensor a(ta ? Shape{k, m} : Shape{m, k});
  Tensor b(tb ? Shape{n, k} : Shape{k, n});
  rng.fill_normal(a, 0.0f, 1.0f);
  rng.fill_normal(b, 0.0f, 1.0f);
  const Tensor fast = matmul(a, b, ta, tb);
  const Tensor ref = naive_matmul(a, b, ta, tb);
  ASSERT_EQ(fast.shape(), ref.shape());
  for (std::int64_t i = 0; i < fast.numel(); ++i) {
    EXPECT_NEAR(fast[i], ref[i], 1e-3f) << "at " << i;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, GemmShapes,
    ::testing::Values(std::make_tuple(1, 1, 1, false, false),
                      std::make_tuple(4, 16, 4, false, false),
                      std::make_tuple(5, 17, 9, false, false),
                      std::make_tuple(64, 64, 64, false, false),
                      std::make_tuple(33, 65, 127, false, false),
                      std::make_tuple(128, 300, 256, false, false),
                      std::make_tuple(31, 33, 7, true, false),
                      std::make_tuple(31, 33, 7, false, true),
                      std::make_tuple(31, 33, 7, true, true),
                      std::make_tuple(100, 100, 300, true, true)));

TEST(Gemm, BetaScalesExistingC) {
  const std::int64_t m = 3, n = 4, k = 2;
  Tensor a(Shape{m, k}, 1.0f);
  Tensor b(Shape{k, n}, 1.0f);
  Tensor c(Shape{m, n}, 10.0f);
  sgemm(false, false, m, n, k, 1.0f, a.data(), k, b.data(), n, 0.5f, c.data(), n);
  for (std::int64_t i = 0; i < c.numel(); ++i) EXPECT_FLOAT_EQ(c[i], 7.0f);
}

TEST(Gemm, AlphaScalesProduct) {
  const std::int64_t m = 2, n = 2, k = 3;
  Tensor a(Shape{m, k}, 1.0f);
  Tensor b(Shape{k, n}, 2.0f);
  Tensor c(Shape{m, n});
  sgemm(false, false, m, n, k, 0.5f, a.data(), k, b.data(), n, 0.0f, c.data(), n);
  for (std::int64_t i = 0; i < c.numel(); ++i) EXPECT_FLOAT_EQ(c[i], 3.0f);
}

TEST(Gemm, InnerDimMismatchThrows) {
  const Tensor a(Shape{2, 3});
  const Tensor b(Shape{4, 5});
  EXPECT_THROW(matmul(a, b), std::invalid_argument);
}

TEST(Im2col, IdentityKernelCopiesImage) {
  ConvGeometry g;
  g.channels = 2;
  g.in_h = g.in_w = 3;
  g.kernel_h = g.kernel_w = 1;
  g.stride = 1;
  g.pad = 0;
  Tensor im(Shape{2, 3, 3});
  std::iota(im.data(), im.data() + im.numel(), 0.0f);
  Tensor col(Shape{g.patch_size(), g.out_h() * g.out_w()});
  im2col(im.data(), g, col.data());
  for (std::int64_t i = 0; i < im.numel(); ++i) EXPECT_EQ(col[i], im[i]);
}

TEST(Im2col, PaddingYieldsZeros) {
  ConvGeometry g;
  g.channels = 1;
  g.in_h = g.in_w = 2;
  g.kernel_h = g.kernel_w = 3;
  g.stride = 1;
  g.pad = 1;
  Tensor im(Shape{1, 2, 2}, 1.0f);
  Tensor col(Shape{g.patch_size(), g.out_h() * g.out_w()});
  im2col(im.data(), g, col.data());
  // Top-left output, top-left kernel tap reads the padded corner.
  EXPECT_EQ(col[0], 0.0f);
}

TEST(Im2col, Col2imIsAdjoint) {
  // <im2col(x), y> == <x, col2im(y)> for random x, y — the defining property
  // of the backward scatter.
  ConvGeometry g;
  g.channels = 3;
  g.in_h = g.in_w = 6;
  g.kernel_h = g.kernel_w = 3;
  g.stride = 2;
  g.pad = 1;
  Rng rng(13);
  Tensor x(Shape{g.channels, g.in_h, g.in_w});
  rng.fill_normal(x, 0.0f, 1.0f);
  Tensor y(Shape{g.patch_size(), g.out_h() * g.out_w()});
  rng.fill_normal(y, 0.0f, 1.0f);

  Tensor col(y.shape());
  im2col(x.data(), g, col.data());
  Tensor back(x.shape());
  col2im(y.data(), g, back.data());

  double lhs = 0.0, rhs = 0.0;
  for (std::int64_t i = 0; i < col.numel(); ++i) lhs += static_cast<double>(col[i]) * y[i];
  for (std::int64_t i = 0; i < x.numel(); ++i) rhs += static_cast<double>(x[i]) * back[i];
  EXPECT_NEAR(lhs, rhs, 1e-2);
}

TEST(Ops, AddSubMul) {
  Tensor a(Shape{4}, 3.0f);
  Tensor b(Shape{4}, 2.0f);
  EXPECT_TRUE(allclose(add(a, b), Tensor(Shape{4}, 5.0f)));
  EXPECT_TRUE(allclose(sub(a, b), Tensor(Shape{4}, 1.0f)));
  EXPECT_TRUE(allclose(mul(a, b), Tensor(Shape{4}, 6.0f)));
  EXPECT_TRUE(allclose(scale(a, -2.0f), Tensor(Shape{4}, -6.0f)));
}

TEST(Ops, ShapeMismatchThrows) {
  const Tensor a(Shape{4});
  const Tensor b(Shape{5});
  EXPECT_THROW(add(a, b), std::invalid_argument);
  EXPECT_THROW(mul(a, b), std::invalid_argument);
}

TEST(Ops, AxpyAccumulates) {
  Tensor a(Shape{3}, 1.0f);
  const Tensor b(Shape{3}, 2.0f);
  axpy(a, 0.5f, b);
  EXPECT_TRUE(allclose(a, Tensor(Shape{3}, 2.0f)));
}

TEST(Ops, ReluClampsNegatives) {
  Tensor x(Shape{4}, std::vector<float>{-1.0f, 0.0f, 2.0f, -3.0f});
  const Tensor y = relu(x);
  EXPECT_EQ(y[0], 0.0f);
  EXPECT_EQ(y[1], 0.0f);
  EXPECT_EQ(y[2], 2.0f);
  EXPECT_EQ(y[3], 0.0f);
}

TEST(Ops, SumMeanCountNonzero) {
  Tensor x(Shape{4}, std::vector<float>{1.0f, 0.0f, -2.0f, 3.0f});
  EXPECT_DOUBLE_EQ(sum(x), 2.0);
  EXPECT_DOUBLE_EQ(mean(x), 0.5);
  EXPECT_EQ(count_nonzero(x), 3);
  EXPECT_EQ(count_nonzero(x, 1.5f), 2);
}

TEST(Ops, MinMax) {
  Tensor x(Shape{4}, std::vector<float>{1.0f, -5.0f, 2.0f, 3.0f});
  EXPECT_EQ(min_value(x), -5.0f);
  EXPECT_EQ(max_value(x), 3.0f);
  EXPECT_EQ(max_abs(x), 5.0f);
}

TEST(Ops, ArgmaxRows) {
  Tensor x(Shape{2, 3}, std::vector<float>{1, 5, 2, 7, 0, 3});
  const auto idx = argmax_rows(x);
  EXPECT_EQ(idx[0], 1);
  EXPECT_EQ(idx[1], 0);
}

}  // namespace
}  // namespace adq
