// Unit tests for the tensor substrate: shapes, storage, RNG determinism,
// GEMM against a naive reference, im2col/col2im adjointness, and the
// elementwise/reduction ops.
#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <numeric>
#include <thread>

#include "tensor/gemm.h"
#include "tensor/im2col.h"
#include "tensor/ops.h"
#include "tensor/parallel.h"
#include "tensor/rng.h"
#include "tensor/shape.h"
#include "tensor/tensor.h"

namespace adq {
namespace {

TEST(Shape, BasicProperties) {
  const Shape s{2, 3, 4};
  EXPECT_EQ(s.rank(), 3);
  EXPECT_EQ(s.numel(), 24);
  EXPECT_EQ(s.dim(0), 2);
  EXPECT_EQ(s.dim(-1), 4);
  EXPECT_EQ(s.stride(0), 12);
  EXPECT_EQ(s.stride(2), 1);
  EXPECT_EQ(s.to_string(), "[2, 3, 4]");
}

TEST(Shape, ScalarShape) {
  const Shape s;
  EXPECT_EQ(s.rank(), 0);
  EXPECT_EQ(s.numel(), 1);
}

TEST(Shape, Equality) {
  EXPECT_EQ(Shape({2, 3}), Shape({2, 3}));
  EXPECT_NE(Shape({2, 3}), Shape({3, 2}));
  EXPECT_NE(Shape({2, 3}), Shape({2, 3, 1}));
}

TEST(Shape, WithDim) {
  const Shape s{2, 3};
  EXPECT_EQ(s.with_dim(1, 7), Shape({2, 7}));
  EXPECT_EQ(s.with_dim(-1, 9), Shape({2, 9}));
}

TEST(Shape, InvalidAxisThrows) {
  const Shape s{2, 3};
  EXPECT_THROW(s.dim(2), std::out_of_range);
  EXPECT_THROW(s.dim(-3), std::out_of_range);
}

TEST(Shape, NegativeDimThrows) {
  EXPECT_THROW(Shape({2, -1}), std::invalid_argument);
}

TEST(Tensor, ZeroInitialised) {
  const Tensor t(Shape{3, 4});
  EXPECT_EQ(t.numel(), 12);
  for (std::int64_t i = 0; i < t.numel(); ++i) EXPECT_EQ(t[i], 0.0f);
}

TEST(Tensor, FillAndAt2d) {
  Tensor t(Shape{2, 3});
  t.fill(2.5f);
  EXPECT_EQ(t.at(1, 2), 2.5f);
  t.at(0, 1) = -1.0f;
  EXPECT_EQ(t[1], -1.0f);
}

TEST(Tensor, At4dIndexing) {
  Tensor t(Shape{2, 3, 4, 5});
  t.at(1, 2, 3, 4) = 9.0f;
  EXPECT_EQ(t[t.numel() - 1], 9.0f);
}

TEST(Tensor, ReshapePreservesData) {
  Tensor t(Shape{2, 6});
  std::iota(t.data(), t.data() + t.numel(), 0.0f);
  const Tensor r = t.reshaped(Shape{3, 4});
  EXPECT_EQ(r.shape(), Shape({3, 4}));
  EXPECT_EQ(r[7], 7.0f);
}

TEST(Tensor, ReshapeNumelMismatchThrows) {
  Tensor t(Shape{2, 3});
  EXPECT_THROW(t.reshape(Shape{4, 2}), std::invalid_argument);
}

TEST(Tensor, ConstructFromVectorChecksSize) {
  EXPECT_THROW(Tensor(Shape{2, 2}, std::vector<float>{1, 2, 3}),
               std::invalid_argument);
}

TEST(Rng, DeterministicFromSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.uniform(), b.uniform());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  bool any_diff = false;
  for (int i = 0; i < 16; ++i) any_diff |= a.uniform() != b.uniform();
  EXPECT_TRUE(any_diff);
}

TEST(Rng, UniformRange) {
  Rng rng(3);
  for (int i = 0; i < 1000; ++i) {
    const float v = rng.uniform(-2.0f, 5.0f);
    EXPECT_GE(v, -2.0f);
    EXPECT_LT(v, 5.0f);
  }
}

TEST(Rng, NormalMoments) {
  Rng rng(4);
  double s = 0.0, s2 = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    const double v = rng.normal(1.0f, 2.0f);
    s += v;
    s2 += v * v;
  }
  const double mean = s / n;
  const double stddev = std::sqrt(s2 / n - mean * mean);
  EXPECT_NEAR(mean, 1.0, 0.1);
  EXPECT_NEAR(stddev, 2.0, 0.1);
}

TEST(Rng, ShuffleIsPermutation) {
  Rng rng(5);
  std::vector<std::int64_t> v(100);
  std::iota(v.begin(), v.end(), 0);
  rng.shuffle(v);
  std::vector<std::int64_t> sorted = v;
  std::sort(sorted.begin(), sorted.end());
  for (std::int64_t i = 0; i < 100; ++i) EXPECT_EQ(sorted[static_cast<std::size_t>(i)], i);
}

TEST(Rng, ForkIndependence) {
  Rng parent(7);
  Rng child = parent.fork();
  // Child stream must not replay the parent's stream.
  Rng parent_copy(7);
  parent_copy.fork();
  EXPECT_EQ(parent.uniform(), parent_copy.uniform());
  (void)child;
}

TEST(Parallel, CoversRangeExactlyOnce) {
  std::vector<std::atomic<int>> hits(1000);
  parallel_for(0, 1000, [&](std::int64_t b, std::int64_t e) {
    for (std::int64_t i = b; i < e; ++i) hits[static_cast<std::size_t>(i)]++;
  });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(Parallel, NestedCallsRunSerially) {
  std::atomic<int> total{0};
  parallel_for(0, 8, [&](std::int64_t b, std::int64_t e) {
    for (std::int64_t i = b; i < e; ++i) {
      parallel_for(0, 10, [&](std::int64_t ib, std::int64_t ie) {
        total += static_cast<int>(ie - ib);
      });
    }
  });
  EXPECT_EQ(total.load(), 80);
}

TEST(Parallel, EmptyRangeIsNoop) {
  bool called = false;
  parallel_for(5, 5, [&](std::int64_t, std::int64_t) { called = true; });
  EXPECT_FALSE(called);
}

TEST(Parallel, ReversedRangeIsNoop) {
  bool called = false;
  parallel_for(10, 2, [&](std::int64_t, std::int64_t) { called = true; });
  EXPECT_FALSE(called);
}

TEST(Parallel, GrainLargerThanRangeRunsOnceInline) {
  // A grain that covers the whole range must produce exactly one serial
  // invocation of [begin, end) on the calling thread.
  const std::thread::id caller = std::this_thread::get_id();
  int calls = 0;
  std::int64_t seen_begin = -1, seen_end = -1;
  std::thread::id seen_thread;
  parallel_for(
      3, 11,
      [&](std::int64_t b, std::int64_t e) {
        ++calls;
        seen_begin = b;
        seen_end = e;
        seen_thread = std::this_thread::get_id();
      },
      /*grain=*/100);
  EXPECT_EQ(calls, 1);
  EXPECT_EQ(seen_begin, 3);
  EXPECT_EQ(seen_end, 11);
  EXPECT_EQ(seen_thread, caller);
}

TEST(Parallel, SingleThreadFallbackIsSerial) {
  // With a single-worker pool every chunk must run inline on the caller.
  // The pool reads ADQ_THREADS once at creation, so this property is only
  // observable in a process launched with ADQ_THREADS=1; ctest registers
  // such a run as `parallel_serial_fallback` (see tests/CMakeLists.txt).
  // On multi-worker pools the range still covers exactly once, so the
  // coverage half of the assertion runs everywhere.
  const bool single = parallel_thread_count() == 1;
  const std::thread::id caller = std::this_thread::get_id();
  std::vector<std::atomic<int>> hits(64);
  std::atomic<bool> off_thread{false};
  parallel_for(0, 64, [&](std::int64_t b, std::int64_t e) {
    if (std::this_thread::get_id() != caller) off_thread = true;
    for (std::int64_t i = b; i < e; ++i) hits[static_cast<std::size_t>(i)]++;
  });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
  if (single) {
    EXPECT_FALSE(off_thread.load());
  }
}

// Naive reference GEMM for validation.
Tensor naive_matmul(const Tensor& a, const Tensor& b, bool ta, bool tb) {
  const std::int64_t m = ta ? a.shape().dim(1) : a.shape().dim(0);
  const std::int64_t k = ta ? a.shape().dim(0) : a.shape().dim(1);
  const std::int64_t n = tb ? b.shape().dim(0) : b.shape().dim(1);
  Tensor c(Shape{m, n});
  for (std::int64_t i = 0; i < m; ++i) {
    for (std::int64_t j = 0; j < n; ++j) {
      double s = 0.0;
      for (std::int64_t p = 0; p < k; ++p) {
        const float av = ta ? a.at(p, i) : a.at(i, p);
        const float bv = tb ? b.at(j, p) : b.at(p, j);
        s += static_cast<double>(av) * bv;
      }
      c.at(i, j) = static_cast<float>(s);
    }
  }
  return c;
}

class GemmShapes : public ::testing::TestWithParam<std::tuple<int, int, int, bool, bool>> {};

TEST_P(GemmShapes, MatchesNaive) {
  const auto [m, n, k, ta, tb] = GetParam();
  Rng rng(11);
  Tensor a(ta ? Shape{k, m} : Shape{m, k});
  Tensor b(tb ? Shape{n, k} : Shape{k, n});
  rng.fill_normal(a, 0.0f, 1.0f);
  rng.fill_normal(b, 0.0f, 1.0f);
  const Tensor fast = matmul(a, b, ta, tb);
  const Tensor ref = naive_matmul(a, b, ta, tb);
  ASSERT_EQ(fast.shape(), ref.shape());
  for (std::int64_t i = 0; i < fast.numel(); ++i) {
    EXPECT_NEAR(fast[i], ref[i], 1e-3f) << "at " << i;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, GemmShapes,
    ::testing::Values(std::make_tuple(1, 1, 1, false, false),
                      std::make_tuple(4, 16, 4, false, false),
                      std::make_tuple(5, 17, 9, false, false),
                      std::make_tuple(64, 64, 64, false, false),
                      std::make_tuple(33, 65, 127, false, false),
                      std::make_tuple(128, 300, 256, false, false),
                      std::make_tuple(31, 33, 7, true, false),
                      std::make_tuple(31, 33, 7, false, true),
                      std::make_tuple(31, 33, 7, true, true),
                      std::make_tuple(100, 100, 300, true, true)));

TEST(Gemm, BetaScalesExistingC) {
  const std::int64_t m = 3, n = 4, k = 2;
  Tensor a(Shape{m, k}, 1.0f);
  Tensor b(Shape{k, n}, 1.0f);
  Tensor c(Shape{m, n}, 10.0f);
  sgemm(false, false, m, n, k, 1.0f, a.data(), k, b.data(), n, 0.5f, c.data(), n);
  for (std::int64_t i = 0; i < c.numel(); ++i) EXPECT_FLOAT_EQ(c[i], 7.0f);
}

TEST(Gemm, AlphaScalesProduct) {
  const std::int64_t m = 2, n = 2, k = 3;
  Tensor a(Shape{m, k}, 1.0f);
  Tensor b(Shape{k, n}, 2.0f);
  Tensor c(Shape{m, n});
  sgemm(false, false, m, n, k, 0.5f, a.data(), k, b.data(), n, 0.0f, c.data(), n);
  for (std::int64_t i = 0; i < c.numel(); ++i) EXPECT_FLOAT_EQ(c[i], 3.0f);
}

TEST(Gemm, InnerDimMismatchThrows) {
  const Tensor a(Shape{2, 3});
  const Tensor b(Shape{4, 5});
  EXPECT_THROW(matmul(a, b), std::invalid_argument);
}

TEST(Im2col, IdentityKernelCopiesImage) {
  ConvGeometry g;
  g.channels = 2;
  g.in_h = g.in_w = 3;
  g.kernel_h = g.kernel_w = 1;
  g.stride = 1;
  g.pad = 0;
  Tensor im(Shape{2, 3, 3});
  std::iota(im.data(), im.data() + im.numel(), 0.0f);
  Tensor col(Shape{g.patch_size(), g.out_h() * g.out_w()});
  im2col(im.data(), g, col.data());
  for (std::int64_t i = 0; i < im.numel(); ++i) EXPECT_EQ(col[i], im[i]);
}

TEST(Im2col, PaddingYieldsZeros) {
  ConvGeometry g;
  g.channels = 1;
  g.in_h = g.in_w = 2;
  g.kernel_h = g.kernel_w = 3;
  g.stride = 1;
  g.pad = 1;
  Tensor im(Shape{1, 2, 2}, 1.0f);
  Tensor col(Shape{g.patch_size(), g.out_h() * g.out_w()});
  im2col(im.data(), g, col.data());
  // Top-left output, top-left kernel tap reads the padded corner.
  EXPECT_EQ(col[0], 0.0f);
}

TEST(Im2col, Col2imIsAdjoint) {
  // <im2col(x), y> == <x, col2im(y)> for random x, y — the defining property
  // of the backward scatter.
  ConvGeometry g;
  g.channels = 3;
  g.in_h = g.in_w = 6;
  g.kernel_h = g.kernel_w = 3;
  g.stride = 2;
  g.pad = 1;
  Rng rng(13);
  Tensor x(Shape{g.channels, g.in_h, g.in_w});
  rng.fill_normal(x, 0.0f, 1.0f);
  Tensor y(Shape{g.patch_size(), g.out_h() * g.out_w()});
  rng.fill_normal(y, 0.0f, 1.0f);

  Tensor col(y.shape());
  im2col(x.data(), g, col.data());
  Tensor back(x.shape());
  col2im(y.data(), g, back.data());

  double lhs = 0.0, rhs = 0.0;
  for (std::int64_t i = 0; i < col.numel(); ++i) lhs += static_cast<double>(col[i]) * y[i];
  for (std::int64_t i = 0; i < x.numel(); ++i) rhs += static_cast<double>(x[i]) * back[i];
  EXPECT_NEAR(lhs, rhs, 1e-2);
}

TEST(Ops, AddSubMul) {
  Tensor a(Shape{4}, 3.0f);
  Tensor b(Shape{4}, 2.0f);
  EXPECT_TRUE(allclose(add(a, b), Tensor(Shape{4}, 5.0f)));
  EXPECT_TRUE(allclose(sub(a, b), Tensor(Shape{4}, 1.0f)));
  EXPECT_TRUE(allclose(mul(a, b), Tensor(Shape{4}, 6.0f)));
  EXPECT_TRUE(allclose(scale(a, -2.0f), Tensor(Shape{4}, -6.0f)));
}

TEST(Ops, ShapeMismatchThrows) {
  const Tensor a(Shape{4});
  const Tensor b(Shape{5});
  EXPECT_THROW(add(a, b), std::invalid_argument);
  EXPECT_THROW(mul(a, b), std::invalid_argument);
}

TEST(Ops, AxpyAccumulates) {
  Tensor a(Shape{3}, 1.0f);
  const Tensor b(Shape{3}, 2.0f);
  axpy(a, 0.5f, b);
  EXPECT_TRUE(allclose(a, Tensor(Shape{3}, 2.0f)));
}

TEST(Ops, ReluClampsNegatives) {
  Tensor x(Shape{4}, std::vector<float>{-1.0f, 0.0f, 2.0f, -3.0f});
  const Tensor y = relu(x);
  EXPECT_EQ(y[0], 0.0f);
  EXPECT_EQ(y[1], 0.0f);
  EXPECT_EQ(y[2], 2.0f);
  EXPECT_EQ(y[3], 0.0f);
}

TEST(Ops, SumMeanCountNonzero) {
  Tensor x(Shape{4}, std::vector<float>{1.0f, 0.0f, -2.0f, 3.0f});
  EXPECT_DOUBLE_EQ(sum(x), 2.0);
  EXPECT_DOUBLE_EQ(mean(x), 0.5);
  EXPECT_EQ(count_nonzero(x), 3);
  EXPECT_EQ(count_nonzero(x, 1.5f), 2);
}

TEST(Ops, MinMax) {
  Tensor x(Shape{4}, std::vector<float>{1.0f, -5.0f, 2.0f, 3.0f});
  EXPECT_EQ(min_value(x), -5.0f);
  EXPECT_EQ(max_value(x), 3.0f);
  EXPECT_EQ(max_abs(x), 5.0f);
}

TEST(Ops, ArgmaxRows) {
  Tensor x(Shape{2, 3}, std::vector<float>{1, 5, 2, 7, 0, 3});
  const auto idx = argmax_rows(x);
  EXPECT_EQ(idx[0], 1);
  EXPECT_EQ(idx[1], 0);
}

}  // namespace
}  // namespace adq
