// Numerical gradient checks: every layer's backward is verified against
// central finite differences of its forward, for both input gradients and
// parameter gradients. Quantization is disabled here (the straight-through
// estimator intentionally mismatches the true gradient of a quantized
// forward; STE behaviour is exercised in test_nn_layers/test_core).
#include <gtest/gtest.h>

#include <cmath>
#include <functional>

#include "nn/batchnorm.h"
#include "nn/conv2d.h"
#include "nn/flatten.h"
#include "nn/init.h"
#include "nn/linear.h"
#include "nn/loss.h"
#include "nn/pool.h"
#include "nn/relu.h"
#include "nn/residual.h"
#include "nn/sequential.h"
#include "tensor/rng.h"

namespace adq::nn {
namespace {

constexpr float kH = 1e-2f;      // central-difference step
constexpr float kAtol = 5e-3f;   // absolute tolerance
constexpr float kRtol = 5e-2f;   // relative tolerance

// Scalar objective: <proj, layer(x)> for a fixed random projection.
double eval_objective(Layer& layer, const Tensor& x, const Tensor& proj) {
  const Tensor y = layer.forward(x);
  double s = 0.0;
  for (std::int64_t i = 0; i < y.numel(); ++i) s += static_cast<double>(y[i]) * proj[i];
  return s;
}

void expect_close(float analytic, float numeric, const std::string& what,
                  float atol = kAtol, float rtol = kRtol) {
  const float tol = atol + rtol * std::fabs(numeric);
  EXPECT_NEAR(analytic, numeric, tol) << what;
}

// Checks d<proj,y>/dx against finite differences at `probes` random input
// coordinates, and every parameter gradient at `probes` coordinates each.
// Composite blocks stacking BN+ReLU need looser tolerances: the objective is
// piecewise linear and a central difference that straddles a ReLU kink
// averages two slopes (an O(1) relative artifact unrelated to backward
// correctness — real backprop bugs show up as ~100% mismatches).
void grad_check(Layer& layer, Tensor x, Shape out_shape, Rng& rng,
                int probes = 12, float atol = kAtol, float rtol = kRtol) {
  Tensor proj(out_shape);
  rng.fill_normal(proj, 0.0f, 1.0f);

  // Analytic pass.
  std::vector<Parameter*> params;
  layer.collect_parameters(params);
  for (Parameter* p : params) p->zero_grad();
  layer.forward(x);
  const Tensor gx = layer.backward(proj);

  // Input gradient probes.
  for (int t = 0; t < probes; ++t) {
    const std::int64_t i = rng.uniform_int(0, x.numel() - 1);
    const float orig = x[i];
    x[i] = orig + kH;
    const double plus = eval_objective(layer, x, proj);
    x[i] = orig - kH;
    const double minus = eval_objective(layer, x, proj);
    x[i] = orig;
    expect_close(gx[i], static_cast<float>((plus - minus) / (2.0 * kH)),
                 "input grad at " + std::to_string(i), atol, rtol);
  }

  // Parameter gradient probes.
  for (Parameter* p : params) {
    for (int t = 0; t < probes; ++t) {
      const std::int64_t i = rng.uniform_int(0, p->value.numel() - 1);
      const float orig = p->value[i];
      p->value[i] = orig + kH;
      const double plus = eval_objective(layer, x, proj);
      p->value[i] = orig - kH;
      const double minus = eval_objective(layer, x, proj);
      p->value[i] = orig;
      expect_close(p->grad[i], static_cast<float>((plus - minus) / (2.0 * kH)),
                   p->name + " grad at " + std::to_string(i), atol, rtol);
    }
  }
}

TEST(GradCheck, Linear) {
  Rng rng(1);
  Linear fc(6, 4, /*use_bias=*/true);
  init_linear(fc, rng);
  fc.set_quantization_enabled(false);
  Tensor x(Shape{3, 6});
  rng.fill_normal(x, 0.0f, 1.0f);
  grad_check(fc, x, Shape{3, 4}, rng);
}

TEST(GradCheck, Conv2dBasic) {
  Rng rng(2);
  Conv2d conv(2, 3, 3, 1, 1, /*use_bias=*/true);
  init_conv(conv, rng);
  conv.set_quantization_enabled(false);
  Tensor x(Shape{2, 2, 5, 5});
  rng.fill_normal(x, 0.0f, 1.0f);
  grad_check(conv, x, Shape{2, 3, 5, 5}, rng);
}

TEST(GradCheck, Conv2dStridedNoPad) {
  Rng rng(3);
  Conv2d conv(3, 2, 3, 2, 0, /*use_bias=*/false);
  init_conv(conv, rng);
  conv.set_quantization_enabled(false);
  Tensor x(Shape{1, 3, 7, 7});
  rng.fill_normal(x, 0.0f, 1.0f);
  grad_check(conv, x, Shape{1, 2, 3, 3}, rng);
}

TEST(GradCheck, Conv2d1x1) {
  Rng rng(4);
  Conv2d conv(4, 4, 1, 1, 0, /*use_bias=*/false);
  init_conv(conv, rng);
  conv.set_quantization_enabled(false);
  Tensor x(Shape{2, 4, 3, 3});
  rng.fill_normal(x, 0.0f, 1.0f);
  grad_check(conv, x, Shape{2, 4, 3, 3}, rng);
}

TEST(GradCheck, BatchNormTrainingMode) {
  Rng rng(5);
  BatchNorm2d bn(3);
  rng.fill_normal(bn.gamma().value, 1.0f, 0.2f);
  rng.fill_normal(bn.beta().value, 0.0f, 0.2f);
  Tensor x(Shape{4, 3, 3, 3});
  rng.fill_normal(x, 0.5f, 2.0f);
  grad_check(bn, x, Shape{4, 3, 3, 3}, rng);
}

TEST(GradCheck, BatchNormEvalMode) {
  Rng rng(6);
  BatchNorm2d bn(2);
  // Populate running stats with one training pass, then freeze.
  Tensor warm(Shape{8, 2, 4, 4});
  rng.fill_normal(warm, 1.0f, 2.0f);
  bn.forward(warm);
  bn.set_training(false);
  Tensor x(Shape{2, 2, 4, 4});
  rng.fill_normal(x, 0.0f, 1.0f);
  grad_check(bn, x, Shape{2, 2, 4, 4}, rng);
}

TEST(GradCheck, ReLUAwayFromKink) {
  Rng rng(7);
  ReLU relu;
  Tensor x(Shape{2, 2, 3, 3});
  rng.fill_normal(x, 0.0f, 1.0f);
  // Push values away from 0 so finite differences don't straddle the kink.
  for (std::int64_t i = 0; i < x.numel(); ++i) {
    if (std::fabs(x[i]) < 0.1f) x[i] = x[i] >= 0 ? 0.1f : -0.1f;
  }
  grad_check(relu, x, Shape{2, 2, 3, 3}, rng);
}

TEST(GradCheck, MaxPool) {
  Rng rng(8);
  MaxPool2d pool(2, 2);
  Tensor x(Shape{2, 3, 4, 4});
  rng.fill_normal(x, 0.0f, 1.0f);
  grad_check(pool, x, Shape{2, 3, 2, 2}, rng);
}

TEST(GradCheck, GlobalAvgPool) {
  Rng rng(9);
  GlobalAvgPool gap;
  Tensor x(Shape{2, 3, 4, 4});
  rng.fill_normal(x, 0.0f, 1.0f);
  grad_check(gap, x, Shape{2, 3}, rng);
}

TEST(GradCheck, ResidualBlockIdentitySkip) {
  Rng rng(10);
  ResidualBlock block(3, 3, 1);
  init_residual_block(block, rng);
  block.set_quantization_enabled(false);
  block.skip_quantizer().set_enabled(false);
  Tensor x(Shape{2, 3, 4, 4});
  rng.fill_normal(x, 0.0f, 1.0f);
  grad_check(block, x, Shape{2, 3, 4, 4}, rng, /*probes=*/8,
             /*atol=*/0.05f, /*rtol=*/0.2f);
}

TEST(GradCheck, ResidualBlockDownsample) {
  Rng rng(11);
  ResidualBlock block(3, 4, 2);
  init_residual_block(block, rng);
  block.set_quantization_enabled(false);
  block.skip_quantizer().set_enabled(false);
  Tensor x(Shape{2, 3, 6, 6});
  rng.fill_normal(x, 0.0f, 1.0f);
  grad_check(block, x, Shape{2, 4, 3, 3}, rng, /*probes=*/8,
             /*atol=*/0.05f, /*rtol=*/0.2f);
}

TEST(GradCheck, SequentialConvBnReluPoolStack) {
  Rng rng(12);
  Sequential seq;
  auto* conv = seq.emplace<Conv2d>(2, 4, 3, 1, 1, false);
  seq.emplace<BatchNorm2d>(4);
  seq.emplace<ReLU>();
  seq.emplace<MaxPool2d>(2, 2);
  init_conv(*conv, rng);
  conv->set_quantization_enabled(false);
  Tensor x(Shape{2, 2, 6, 6});
  rng.fill_normal(x, 0.0f, 1.0f);
  grad_check(seq, x, Shape{2, 4, 3, 3}, rng, /*probes=*/8);
}

TEST(GradCheck, SoftmaxCrossEntropyLogitsGradient) {
  Rng rng(13);
  SoftmaxCrossEntropy loss;
  Tensor logits(Shape{3, 4});
  rng.fill_normal(logits, 0.0f, 1.5f);
  const std::vector<std::int64_t> labels{0, 2, 3};
  loss.forward(logits, labels);
  const Tensor g = loss.backward();
  for (std::int64_t i = 0; i < logits.numel(); ++i) {
    const float orig = logits[i];
    logits[i] = orig + kH;
    const double plus = loss.forward(logits, labels);
    logits[i] = orig - kH;
    const double minus = loss.forward(logits, labels);
    logits[i] = orig;
    expect_close(g[i], static_cast<float>((plus - minus) / (2.0 * kH)),
                 "logit grad " + std::to_string(i));
  }
  loss.forward(logits, labels);  // restore cached state consistency
}

}  // namespace
}  // namespace adq::nn
