// .adqplan serialization tests: byte-stable round-trips that reproduce
// predictions exactly for int8/int4/int2 mixed plans (VGG19 and ResNet18,
// so the residual ops serialize too), plus rejection of bad magic,
// unsupported versions, truncation, and corrupt payloads with clear
// errors.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "infer/engine.h"
#include "infer/plan.h"
#include "infer/plan_io.h"
#include "models/mobilenet.h"
#include "models/resnet.h"
#include "models/vgg.h"
#include "plan_test_util.h"
#include "tensor/ops.h"
#include "tensor/rng.h"

namespace adq::infer {
namespace {

std::string to_bytes(const InferencePlan& plan) {
  std::ostringstream out(std::ios::binary);
  save_plan(plan, out);
  return out.str();
}

InferencePlan from_bytes(const std::string& bytes) {
  std::istringstream in(bytes, std::ios::binary);
  return load_plan(in);
}

// What an older-version save drops: the derivable memory-plan annotations.
using testutil::without_memory_plan;

std::unique_ptr<models::QuantizableModel> small_vgg(
    const std::vector<int>& bit_pattern, std::uint64_t seed = 21) {
  Rng rng(seed);
  models::VggConfig cfg;
  cfg.width_mult = 0.0625;
  cfg.num_classes = 10;
  auto model = models::build_vgg19(cfg, rng);
  model->set_training(false);
  for (int i = 0; i < model->unit_count(); ++i) {
    if (!model->unit(i).frozen) {
      model->unit(i).set_bits(
          bit_pattern[static_cast<std::size_t>(i) % bit_pattern.size()]);
    }
  }
  return model;
}

void expect_identical_forward(const InferencePlan& a, const InferencePlan& b,
                              const Tensor& x) {
  const IntInferenceEngine ea(a), eb(b);
  const Tensor ya = ea.forward(x);
  const Tensor yb = eb.forward(x);
  ASSERT_EQ(ya.shape(), yb.shape());
  for (std::int64_t i = 0; i < ya.numel(); ++i) {
    ASSERT_EQ(ya[i], yb[i]) << "logit " << i;
  }
}

TEST(PlanIo, RoundTripIsByteStableAndPredictionIdentical) {
  // Mixed int8/int4/int2 cells plus the float frozen ends — every storage
  // form the format has.
  auto model = small_vgg({8, 4, 2});
  const InferencePlan plan = compile(*model);

  const std::string bytes = to_bytes(plan);
  const InferencePlan loaded = from_bytes(bytes);

  EXPECT_EQ(loaded.model_name, plan.model_name);
  ASSERT_EQ(loaded.layers.size(), plan.layers.size());
  ASSERT_EQ(loaded.ops.size(), plan.ops.size());
  EXPECT_EQ(loaded.weight_bytes(), plan.weight_bytes());
  EXPECT_EQ(loaded.integer_layer_count(), plan.integer_layer_count());

  // save(load(save(p))) must be byte-identical — the format has no
  // nondeterminism (no timestamps, no map iteration, no padding noise).
  EXPECT_EQ(to_bytes(loaded), bytes);

  Rng rng(31);
  Tensor x(Shape{8, 3, 32, 32});
  rng.fill_normal(x, 0.0f, 1.0f);
  expect_identical_forward(plan, loaded, x);
}

TEST(PlanIo, FingerprintIsStableAcrossRoundTripsAndRecompiles) {
  auto model = small_vgg({8, 4, 2});
  const InferencePlan plan = compile(*model);
  const std::uint64_t fp = plan_fingerprint(plan);
  EXPECT_NE(fp, 0u);
  // Round-tripping must not move the fingerprint (it hashes the canonical
  // serialized bytes, and the format is byte-stable).
  EXPECT_EQ(plan_fingerprint(from_bytes(to_bytes(plan))), fp);
  // Recompiling the same model is byte-identical, hence fingerprint-equal.
  EXPECT_EQ(plan_fingerprint(compile(*small_vgg({8, 4, 2}))), fp);
}

TEST(PlanIo, FingerprintSeparatesDifferentPlans) {
  const std::uint64_t base = plan_fingerprint(compile(*small_vgg({8, 4, 2})));
  // A different bit allocation of the same weights is a different plan.
  EXPECT_NE(plan_fingerprint(compile(*small_vgg({8}))), base);
  // Same architecture and bits, different weights.
  EXPECT_NE(plan_fingerprint(compile(*small_vgg({8, 4, 2}, /*seed=*/22))),
            base);
}

TEST(PlanIo, PerBitwidthRoundTripPreservesCells) {
  for (int bits : {8, 4, 2}) {
    auto model = small_vgg({bits});
    const InferencePlan plan = compile(*model);
    const InferencePlan loaded = from_bytes(to_bytes(plan));
    for (std::size_t i = 0; i < plan.layers.size(); ++i) {
      EXPECT_EQ(loaded.layers[i].cell_bits, plan.layers[i].cell_bits);
      EXPECT_EQ(loaded.layers[i].weight_codes, plan.layers[i].weight_codes);
      EXPECT_EQ(loaded.layers[i].bits, plan.layers[i].bits);
    }
    Rng rng(40 + static_cast<std::uint64_t>(bits));
    Tensor x(Shape{4, 3, 32, 32});
    rng.fill_normal(x, 0.0f, 1.0f);
    expect_identical_forward(plan, loaded, x);
  }
}

TEST(PlanIo, ResNetRoundTripSerializesResidualOps) {
  Rng rng(22);
  models::ResNetConfig cfg;
  cfg.width_mult = 0.0625;
  cfg.num_classes = 10;
  cfg.input_size = 16;
  auto model = models::build_resnet18(cfg, rng);
  model->set_training(false);
  for (int i = 0; i < model->unit_count(); ++i) {
    if (!model->unit(i).frozen) model->unit(i).set_bits(i % 2 == 0 ? 8 : 4);
  }
  const InferencePlan plan = compile(*model);
  const InferencePlan loaded = from_bytes(to_bytes(plan));

  // The residual graph ops (push/skip-gemm/add) survive verbatim.
  ASSERT_EQ(loaded.ops.size(), plan.ops.size());
  int skips = 0;
  for (std::size_t i = 0; i < plan.ops.size(); ++i) {
    EXPECT_EQ(static_cast<int>(loaded.ops[i].kind),
              static_cast<int>(plan.ops[i].kind));
    EXPECT_EQ(loaded.ops[i].layer, plan.ops[i].layer);
    EXPECT_EQ(loaded.ops[i].skip_bits, plan.ops[i].skip_bits);
    EXPECT_EQ(loaded.ops[i].mask_channels, plan.ops[i].mask_channels);
    skips += plan.ops[i].kind == OpKind::kPushSkip;
  }
  EXPECT_EQ(skips, 8);  // ResNet18: eight residual blocks

  Tensor x(Shape{4, 3, 16, 16});
  rng.fill_normal(x, 0.0f, 1.0f);
  expect_identical_forward(plan, loaded, x);
}

TEST(PlanIo, V3RoundTripPreservesMemoryPlan) {
  // The v3 memory plan — arena footprint, planned input shape, per-op slot
  // offsets, deferred skip-quantize ops — survives a round trip byte for
  // byte and the loaded plan still executes on the arena path.
  Rng rng(24);
  models::ResNetConfig cfg;
  cfg.width_mult = 0.0625;
  cfg.num_classes = 10;
  cfg.input_size = 16;
  auto model = models::build_resnet18(cfg, rng);
  model->set_training(false);
  for (int i = 0; i < model->unit_count(); ++i) {
    if (!model->unit(i).frozen) model->unit(i).set_bits(4);
  }
  const InferencePlan plan = compile(*model);
  ASSERT_GT(plan.arena_bytes, 0);
  ASSERT_EQ(plan.planned_input.rank, 3);

  const std::string bytes = to_bytes(plan);
  const InferencePlan loaded = from_bytes(bytes);
  EXPECT_EQ(to_bytes(loaded), bytes);
  EXPECT_EQ(loaded.arena_bytes, plan.arena_bytes);
  EXPECT_EQ(loaded.planned_input.channels, 3);
  int quantize_skips = 0, slotted = 0;
  ASSERT_EQ(loaded.ops.size(), plan.ops.size());
  for (std::size_t i = 0; i < plan.ops.size(); ++i) {
    EXPECT_EQ(loaded.ops[i].out_offset, plan.ops[i].out_offset);
    quantize_skips += loaded.ops[i].kind == OpKind::kQuantizeSkip;
    slotted += loaded.ops[i].out_offset >= 0;
  }
  EXPECT_EQ(quantize_skips, 8);  // one deferred Fig-2 quantizer per block
  EXPECT_GT(slotted, 0);

  Tensor x(Shape{3, 3, 16, 16});
  rng.fill_normal(x, 0.0f, 1.0f);
  const IntInferenceEngine engine(loaded);
  EXPECT_TRUE(engine.uses_arena(x));
  expect_identical_forward(plan, loaded, x);
}

TEST(PlanIo, RefusesWritingDeferredSkipQuantizeAtVersion2) {
  // A residual plan's deferred skip-quantize op is v3 semantics a v2
  // reader cannot execute: writing it at version 2 must fail loudly, with
  // the op and version named, never silently drop the quantization.
  Rng rng(25);
  models::ResNetConfig cfg;
  cfg.width_mult = 0.0625;
  cfg.num_classes = 10;
  cfg.input_size = 16;
  auto model = models::build_resnet18(cfg, rng);
  model->set_training(false);
  for (int i = 0; i < model->unit_count(); ++i) {
    if (!model->unit(i).frozen) model->unit(i).set_bits(8);
  }
  const InferencePlan plan = compile(*model);
  std::ostringstream out(std::ios::binary);
  try {
    save_plan(plan, out, /*version=*/2);
    FAIL() << "deferred skip-quantize written at v2";
  } catch (const std::runtime_error& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("skip-quantize"), std::string::npos) << what;
    EXPECT_NE(what.find("version 2"), std::string::npos) << what;
  }
}

TEST(PlanIo, Version2WritingDropsMemoryPlanButExecutesIdentically) {
  // A plain chain (no residual ops) IS expressible at v2; the write drops
  // only the derivable arena annotations and the loaded plan falls back to
  // the heap executor with bit-identical logits. Compiled with activation
  // compression off — packed slots are not expressible below v4 and
  // save_plan refuses them rather than dropping (covered elsewhere).
  const testutil::ScopedEnv act_off("ADQ_ACT_BITS", "off");
  auto model = small_vgg({8, 4});
  const InferencePlan plan = compile(*model);
  ASSERT_GT(plan.arena_bytes, 0);
  std::ostringstream out(std::ios::binary);
  save_plan(plan, out, /*version=*/2);
  const InferencePlan loaded = from_bytes(out.str());
  EXPECT_EQ(loaded.arena_bytes, 0);
  for (const OpPlan& op : loaded.ops) EXPECT_EQ(op.out_offset, -1);

  Rng rng(58);
  Tensor x(Shape{4, 3, 32, 32});
  rng.fill_normal(x, 0.0f, 1.0f);
  const IntInferenceEngine engine(loaded);
  EXPECT_FALSE(engine.uses_arena(x));
  expect_identical_forward(plan, loaded, x);
}

TEST(PlanIo, RejectsArenaSlotOutsideTheArena) {
  auto model = small_vgg({8});
  InferencePlan plan = compile(*model);
  ASSERT_GT(plan.arena_bytes, 0);
  for (OpPlan& op : plan.ops) {
    if (op.out_offset >= 0) {
      op.out_offset = plan.arena_bytes + 64;  // past the declared footprint
      break;
    }
  }
  try {
    from_bytes(to_bytes(plan));
    FAIL() << "out-of-arena slot accepted";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("arena"), std::string::npos)
        << e.what();
  }
}

TEST(PlanIo, RejectsMisalignedArenaSlot) {
  // Per-sample offsets scale by the batch size at run time; only 64-byte
  // alignment keeps every scaled offset aligned and float-indexable.
  auto model = small_vgg({8});
  InferencePlan plan = compile(*model);
  for (OpPlan& op : plan.ops) {
    if (op.out_offset >= 0) {
      op.out_offset += 4;
      break;
    }
  }
  try {
    from_bytes(to_bytes(plan));
    FAIL() << "misaligned slot accepted";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("arena"), std::string::npos)
        << e.what();
  }
}

TEST(PlanIo, FileRoundTrip) {
  auto model = small_vgg({8, 4});
  const InferencePlan plan = compile(*model);
  const std::string path =
      testing::TempDir() + "/test_plan_io_roundtrip.adqplan";
  save_plan(plan, path);
  const InferencePlan loaded = load_plan(path);
  EXPECT_EQ(to_bytes(loaded), to_bytes(plan));
  std::remove(path.c_str());
}

TEST(PlanIo, WritesCurrentFormatVersionInHeader) {
  auto model = small_vgg({8});
  const std::string bytes = to_bytes(compile(*model));
  std::uint32_t version;
  std::memcpy(&version, bytes.data() + 8, sizeof(version));
  EXPECT_EQ(version, kPlanFormatVersion);
  EXPECT_EQ(kPlanFormatVersion, 4u);
}

TEST(PlanIo, LoadsPreviousFormatVersion) {
  // Format bumps must not orphan existing plan files: a plan expressible
  // in v1 saves at version 1 and loads back with identical semantics —
  // never a silent misparse. The v3 memory-plan annotations are derivable
  // metadata, dropped on the way down (the loaded plan then runs on the
  // engine's heap path, bit-identically). Compiled with activation
  // compression off: v4 packed slots are refused below v4, not dropped.
  const testutil::ScopedEnv act_off("ADQ_ACT_BITS", "off");
  auto model = small_vgg({8, 4, 2});
  const InferencePlan plan = compile(*model);
  ASSERT_GT(plan.arena_bytes, 0);  // freshly compiled plans are planned
  std::ostringstream out(std::ios::binary);
  save_plan(plan, out, /*version=*/1);
  const std::string v1_bytes = out.str();

  std::uint32_t version;
  std::memcpy(&version, v1_bytes.data() + 8, sizeof(version));
  ASSERT_EQ(version, 1u);
  ASSERT_LT(v1_bytes.size(), to_bytes(plan).size());  // no depthwise bytes

  const InferencePlan loaded = from_bytes(v1_bytes);
  ASSERT_EQ(loaded.layers.size(), plan.layers.size());
  for (const GemmLayerPlan& l : loaded.layers) EXPECT_FALSE(l.is_depthwise);
  EXPECT_EQ(loaded.arena_bytes, 0);  // memory plan dropped, not misparsed
  // Re-saving at the current version is byte-identical to the direct save
  // up to the dropped memory plan.
  EXPECT_EQ(to_bytes(loaded), to_bytes(without_memory_plan(plan)));

  Rng rng(55);
  Tensor x(Shape{4, 3, 32, 32});
  rng.fill_normal(x, 0.0f, 1.0f);
  expect_identical_forward(plan, loaded, x);
}

TEST(PlanIo, RefusesWritingDepthwiseAtVersion1) {
  Rng rng(56);
  models::MobileNetConfig cfg;
  cfg.width_mult = 0.25;
  cfg.num_classes = 10;
  auto model = models::build_mobilenet_small(cfg, rng);
  model->set_training(false);
  for (int i = 0; i < model->unit_count(); ++i) {
    if (!model->unit(i).frozen) model->unit(i).set_bits(8);
  }
  const InferencePlan plan = compile(*model);
  std::ostringstream out(std::ios::binary);
  try {
    save_plan(plan, out, /*version=*/1);
    FAIL() << "depthwise plan written at v1";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("version"), std::string::npos)
        << e.what();
  }
}

TEST(PlanIo, DepthwiseRoundTripIsByteStable) {
  Rng rng(57);
  models::MobileNetConfig cfg;
  cfg.width_mult = 0.25;
  cfg.num_classes = 10;
  auto model = models::build_mobilenet_small(cfg, rng);
  model->set_training(false);
  for (int i = 0; i < model->unit_count(); ++i) {
    if (!model->unit(i).frozen) model->unit(i).set_bits(i % 2 == 0 ? 8 : 4);
  }
  const InferencePlan plan = compile(*model);
  const std::string bytes = to_bytes(plan);
  const InferencePlan loaded = from_bytes(bytes);
  EXPECT_EQ(to_bytes(loaded), bytes);
  int depthwise = 0;
  for (const GemmLayerPlan& l : loaded.layers) depthwise += l.is_depthwise;
  EXPECT_EQ(depthwise, 5);

  Tensor x(Shape{4, 3, 32, 32});
  rng.fill_normal(x, 0.0f, 1.0f);
  expect_identical_forward(plan, loaded, x);
}

TEST(PlanIo, RejectsBadMagic) {
  auto model = small_vgg({8});
  std::string bytes = to_bytes(compile(*model));
  bytes[0] = 'X';
  try {
    from_bytes(bytes);
    FAIL() << "bad magic accepted";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("magic"), std::string::npos)
        << e.what();
  }
}

TEST(PlanIo, RejectsNewerVersion) {
  auto model = small_vgg({8});
  std::string bytes = to_bytes(compile(*model));
  const std::uint32_t future_version = 999;
  bytes.replace(8, 4, reinterpret_cast<const char*>(&future_version), 4);
  try {
    from_bytes(bytes);
    FAIL() << "future version accepted";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("version"), std::string::npos)
        << e.what();
  }
}

TEST(PlanIo, RejectsTruncatedFile) {
  auto model = small_vgg({8});
  const std::string bytes = to_bytes(compile(*model));
  // Chopping anywhere — inside the payload or the checksum — must fail
  // loudly, never return a half-parsed plan.
  for (const std::size_t keep :
       {bytes.size() - 1, bytes.size() / 2, std::size_t{20}, std::size_t{3}}) {
    EXPECT_THROW(from_bytes(bytes.substr(0, keep)), std::runtime_error)
        << "kept " << keep << " of " << bytes.size();
  }
}

TEST(PlanIo, RejectsCorruptPayload) {
  auto model = small_vgg({8});
  std::string bytes = to_bytes(compile(*model));
  bytes[bytes.size() / 2] ^= 0x40;  // flip one payload bit
  try {
    from_bytes(bytes);
    FAIL() << "corrupt payload accepted";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("checksum"), std::string::npos)
        << e.what();
  }
}

TEST(PlanIo, RejectsWideBitsOnIntegerPath) {
  // compile() clamps the integer path to <= 8 bits; a file claiming an
  // integer layer at 16 bits would silently wrap activation codes, so the
  // loader must reject it even though every size field is consistent.
  auto model = small_vgg({8});
  InferencePlan plan = compile(*model);
  for (GemmLayerPlan& l : plan.layers) {
    if (l.path == ExecPath::kInteger) {
      l.bits = 16;
      break;
    }
  }
  try {
    from_bytes(to_bytes(plan));
    FAIL() << "16-bit integer-path layer accepted";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("bits"), std::string::npos)
        << e.what();
  }
}

TEST(PlanIo, MissingFileError) {
  EXPECT_THROW(load_plan("/nonexistent/dir/model.adqplan"),
               std::runtime_error);
}

// ---------------------------------------------------------------------------
// v4 — compressed activation slots.
// ---------------------------------------------------------------------------

InferencePlan packed_plan() {
  const testutil::ScopedEnv act_on("ADQ_ACT_BITS", "on");
  auto model = small_vgg({8, 4, 2});
  return compile(*model);
}

TEST(PlanIo, V4RoundTripPreservesPackedActivationSlots) {
  const InferencePlan plan = packed_plan();
  int packed = 0;
  for (const OpPlan& op : plan.ops) packed += op.out_act_bits > 0;
  ASSERT_GT(packed, 0);  // the fixture really compresses something
  ASSERT_GT(plan.arena_bytes_u8, plan.arena_bytes);

  const std::string bytes = to_bytes(plan);
  const InferencePlan loaded = from_bytes(bytes);
  EXPECT_EQ(to_bytes(loaded), bytes);
  EXPECT_EQ(loaded.arena_bytes_u8, plan.arena_bytes_u8);
  ASSERT_EQ(loaded.ops.size(), plan.ops.size());
  for (std::size_t i = 0; i < plan.ops.size(); ++i) {
    EXPECT_EQ(loaded.ops[i].out_act_bits, plan.ops[i].out_act_bits) << i;
    EXPECT_EQ(loaded.ops[i].out_act_qbits, plan.ops[i].out_act_qbits) << i;
  }

  Rng rng(61);
  Tensor x(Shape{4, 3, 32, 32});
  rng.fill_normal(x, 0.0f, 1.0f);
  expect_identical_forward(plan, loaded, x);
}

TEST(PlanIo, RefusesWritingPackedSlotsBelowVersion4) {
  // A v3 file would keep slot offsets sized for packed codes while v3
  // readers execute float stores — silent corruption, so the save must
  // refuse with the version and the recompile remedy named.
  const InferencePlan plan = packed_plan();
  for (const std::uint32_t version : {3u, 2u, 1u}) {
    std::ostringstream out(std::ios::binary);
    try {
      save_plan(plan, out, version);
      FAIL() << "packed plan written at v" << version;
    } catch (const std::runtime_error& e) {
      const std::string what = e.what();
      EXPECT_NE(what.find("format version 4"), std::string::npos) << what;
      EXPECT_NE(what.find("ADQ_ACT_BITS=off"), std::string::npos) << what;
    }
  }
}

TEST(PlanIo, V3FileLoadsWithFloatSlots) {
  // Pre-v4 files carry no activation-storage annotations: every slot loads
  // as float storage and the float baseline backfills from the arena
  // footprint itself — never a misparse.
  const testutil::ScopedEnv act_off("ADQ_ACT_BITS", "off");
  auto model = small_vgg({8, 4});
  const InferencePlan plan = compile(*model);
  std::ostringstream out(std::ios::binary);
  save_plan(plan, out, /*version=*/3);
  const InferencePlan loaded = from_bytes(out.str());
  EXPECT_EQ(loaded.arena_bytes, plan.arena_bytes);
  EXPECT_EQ(loaded.arena_bytes_u8, plan.arena_bytes);
  for (const OpPlan& op : loaded.ops) {
    EXPECT_EQ(op.out_act_bits, 0);
    EXPECT_EQ(op.out_act_qbits, 0);
  }

  Rng rng(62);
  Tensor x(Shape{4, 3, 32, 32});
  rng.fill_normal(x, 0.0f, 1.0f);
  expect_identical_forward(plan, loaded, x);
}

TEST(PlanIo, FingerprintSeparatesPackedFromFloatSlotPlans) {
  // Same model, same weights — but the packed plan stores different bytes
  // in its activation slots, so the fingerprints must differ.
  const std::uint64_t packed = plan_fingerprint(packed_plan());
  const testutil::ScopedEnv act_off("ADQ_ACT_BITS", "off");
  EXPECT_NE(plan_fingerprint(compile(*small_vgg({8, 4, 2}))), packed);
}

TEST(PlanIo, RejectsInvalidPackedCellWidth) {
  InferencePlan plan = packed_plan();
  for (OpPlan& op : plan.ops) {
    if (op.out_act_bits > 0) {
      op.out_act_bits = 3;  // not a {1, 2, 4, 8} cell
      break;
    }
  }
  try {
    from_bytes(to_bytes(plan));
    FAIL() << "3-bit cell accepted";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("cell width"), std::string::npos)
        << e.what();
  }
}

TEST(PlanIo, RejectsCodeGridWiderThanItsCell) {
  InferencePlan plan = packed_plan();
  bool tampered = false;
  for (OpPlan& op : plan.ops) {
    if (op.out_act_bits == 4 && op.out_act_qbits == 4) {
      op.out_act_qbits = 8;  // 8-bit codes cannot live in 4-bit cells
      tampered = true;
      break;
    }
  }
  ASSERT_TRUE(tampered);
  try {
    from_bytes(to_bytes(plan));
    FAIL() << "8-bit grid in a 4-bit cell accepted";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("cell width"), std::string::npos)
        << e.what();
  }
}

}  // namespace
}  // namespace adq::infer
