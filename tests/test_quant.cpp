// Unit and property tests for the quantization library: eqn-1 codes and
// grids, fake-quant round-trips, the stateful FakeQuantizer, eqn-3 bit
// updates, and the PIM hardware rounding grid.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "quant/bitwidth.h"
#include "quant/fake_quantizer.h"
#include "quant/quantizer.h"
#include "tensor/ops.h"
#include "tensor/rng.h"

namespace adq::quant {
namespace {

TEST(Quantizer, MaxCode) {
  EXPECT_EQ(max_code(1), 1);
  EXPECT_EQ(max_code(2), 3);
  EXPECT_EQ(max_code(8), 255);
  EXPECT_EQ(max_code(16), 65535);
  EXPECT_THROW(max_code(0), std::invalid_argument);
  EXPECT_THROW(max_code(32), std::invalid_argument);
}

TEST(Quantizer, CodeEndpoints) {
  EXPECT_EQ(quantize_code(-1.0f, -1.0f, 1.0f, 4), 0);
  EXPECT_EQ(quantize_code(1.0f, -1.0f, 1.0f, 4), 15);
  // Values outside the range clamp.
  EXPECT_EQ(quantize_code(-9.0f, -1.0f, 1.0f, 4), 0);
  EXPECT_EQ(quantize_code(9.0f, -1.0f, 1.0f, 4), 15);
}

TEST(Quantizer, PaperExampleEqn1) {
  // eqn 1 with k=3, range [0, 7]: x=3.3 -> round(3.3 * 7/7) = 3.
  EXPECT_EQ(quantize_code(3.3f, 0.0f, 7.0f, 3), 3);
}

TEST(Quantizer, DequantizeInvertsEndpoints) {
  EXPECT_FLOAT_EQ(dequantize_code(0, -2.0f, 6.0f, 5), -2.0f);
  EXPECT_FLOAT_EQ(dequantize_code(31, -2.0f, 6.0f, 5), 6.0f);
}

TEST(Quantizer, DegenerateRange) {
  EXPECT_EQ(quantize_code(5.0f, 5.0f, 5.0f, 4), 0);
  EXPECT_FLOAT_EQ(dequantize_code(0, 5.0f, 5.0f, 4), 5.0f);
}

TEST(FakeQuantize, OneBitSnapsToEndpoints) {
  Tensor x(Shape{5}, std::vector<float>{0.0f, 0.2f, 0.5f, 0.8f, 1.0f});
  const Tensor y = fake_quantize(x, 0.0f, 1.0f, 1);
  EXPECT_FLOAT_EQ(y[0], 0.0f);
  EXPECT_FLOAT_EQ(y[1], 0.0f);
  EXPECT_FLOAT_EQ(y[3], 1.0f);
  EXPECT_FLOAT_EQ(y[4], 1.0f);
}

TEST(FakeQuantize, HighBitsIsIdentity) {
  Rng rng(1);
  Tensor x(Shape{64});
  rng.fill_normal(x, 0.0f, 1.0f);
  const Tensor y = fake_quantize(x, 24);
  EXPECT_TRUE(allclose(x, y, 0.0f));
}

TEST(FakeQuantize, PreservesMinMax) {
  Rng rng(2);
  Tensor x(Shape{128});
  rng.fill_normal(x, 0.0f, 2.0f);
  const Tensor y = fake_quantize(x, 4);
  EXPECT_FLOAT_EQ(min_value(y), min_value(x));
  EXPECT_FLOAT_EQ(max_value(y), max_value(x));
}

class FakeQuantBits : public ::testing::TestWithParam<int> {};

TEST_P(FakeQuantBits, ErrorBoundedByHalfStep) {
  // Property: |x - q(x)| <= step/2 where step = range / (2^k - 1).
  const int bits = GetParam();
  Rng rng(3 + bits);
  Tensor x(Shape{256});
  rng.fill_uniform(x, -3.0f, 5.0f);
  const float step = (max_value(x) - min_value(x)) / static_cast<float>(max_code(bits));
  const Tensor y = fake_quantize(x, bits);
  for (std::int64_t i = 0; i < x.numel(); ++i) {
    EXPECT_LE(std::fabs(x[i] - y[i]), step * 0.5f + 1e-5f);
  }
}

TEST_P(FakeQuantBits, LevelCountBounded) {
  // Property: a k-bit grid admits at most 2^k distinct values. With N
  // samples the observable count is additionally capped at N, so the exact
  // bound is min(2^k, N); for k >= 12 (2^k >= N here) the sample-count cap
  // is the binding constraint and the grid cap is vacuous, but the property
  // itself holds at every bit-width — no skip needed.
  const int bits = GetParam();
  Rng rng(17 + bits);
  Tensor x(Shape{4096});
  rng.fill_normal(x, 0.0f, 1.0f);
  const Tensor y = fake_quantize(x, bits);
  std::vector<float> vals(y.data(), y.data() + y.numel());
  std::sort(vals.begin(), vals.end());
  vals.erase(std::unique(vals.begin(), vals.end()), vals.end());
  EXPECT_LE(static_cast<std::int64_t>(vals.size()),
            std::min(x.numel(), std::int64_t{1} << bits));
}

TEST_P(FakeQuantBits, Idempotent) {
  // Property: quantizing an already-quantized tensor is the identity.
  const int bits = GetParam();
  Rng rng(29 + bits);
  Tensor x(Shape{128});
  rng.fill_normal(x, 0.0f, 1.0f);
  const Tensor once = fake_quantize(x, bits);
  const Tensor twice = fake_quantize(once, bits);
  EXPECT_TRUE(allclose(once, twice, 1e-6f));
}

INSTANTIATE_TEST_SUITE_P(Bits, FakeQuantBits, ::testing::Values(1, 2, 3, 4, 5, 8, 11, 16));

TEST(QuantizeCodes, RoundTripThroughDequantize) {
  Rng rng(5);
  Tensor x(Shape{64});
  rng.fill_uniform(x, -1.0f, 1.0f);
  const float lo = min_value(x), hi = max_value(x);
  const auto codes = quantize_codes(x, lo, hi, 6);
  const Tensor y = fake_quantize(x, lo, hi, 6);
  for (std::int64_t i = 0; i < x.numel(); ++i) {
    EXPECT_NEAR(dequantize_code(codes[static_cast<std::size_t>(i)], lo, hi, 6),
                y[i], 1e-5f);
  }
}

TEST(FakeQuantizerState, DisabledIsIdentity) {
  FakeQuantizer q(2);
  q.set_enabled(false);
  Rng rng(6);
  Tensor x(Shape{32});
  rng.fill_normal(x, 0.0f, 1.0f);
  EXPECT_TRUE(allclose(q.apply(x), x, 0.0f));
}

TEST(FakeQuantizerState, ObservesPerBatchRange) {
  FakeQuantizer q(8, RangeMode::kPerBatch);
  Tensor x(Shape{3}, std::vector<float>{-2.0f, 0.0f, 4.0f});
  q.apply(x);
  EXPECT_FLOAT_EQ(q.range_min(), -2.0f);
  EXPECT_FLOAT_EQ(q.range_max(), 4.0f);
  Tensor y(Shape{3}, std::vector<float>{-1.0f, 0.0f, 1.0f});
  q.apply(y);
  EXPECT_FLOAT_EQ(q.range_min(), -1.0f);  // per-batch: range follows input
  EXPECT_FLOAT_EQ(q.range_max(), 1.0f);
}

TEST(FakeQuantizerState, EmaRangeSmooths) {
  FakeQuantizer q(8, RangeMode::kEma, 0.5f);
  Tensor a(Shape{2}, std::vector<float>{0.0f, 4.0f});
  Tensor b(Shape{2}, std::vector<float>{0.0f, 0.0f});
  q.apply(a);
  q.apply(b);
  EXPECT_FLOAT_EQ(q.range_max(), 2.0f);  // 0.5*4 + 0.5*0
}

TEST(FakeQuantizerState, SetBitsValidates) {
  FakeQuantizer q(8);
  EXPECT_THROW(q.set_bits(0), std::invalid_argument);
  q.set_bits(3);
  EXPECT_EQ(q.bits(), 3);
}

TEST(HardwareRounding, Grid) {
  EXPECT_EQ(round_to_hardware_bits(1), 2);
  EXPECT_EQ(round_to_hardware_bits(2), 2);
  EXPECT_EQ(round_to_hardware_bits(3), 4);
  EXPECT_EQ(round_to_hardware_bits(4), 4);
  EXPECT_EQ(round_to_hardware_bits(5), 8);
  EXPECT_EQ(round_to_hardware_bits(8), 8);
  EXPECT_EQ(round_to_hardware_bits(9), 16);
  EXPECT_EQ(round_to_hardware_bits(16), 16);
  EXPECT_EQ(round_to_hardware_bits(22), 16);  // saturates at the top
  EXPECT_THROW(round_to_hardware_bits(0), std::invalid_argument);
}

TEST(UpdateBits, PaperExampleEqn3) {
  // Paper: AD {0.9, 0.3, 0.5} with bits {16, 10, 8} -> {14, 3, 4}.
  EXPECT_EQ(update_bits(16, 0.9), 14);
  EXPECT_EQ(update_bits(10, 0.3), 3);
  EXPECT_EQ(update_bits(8, 0.5), 4);
}

TEST(UpdateBits, FlooredAtOneBit) {
  EXPECT_EQ(update_bits(2, 0.1), 1);
  EXPECT_EQ(update_bits(1, 0.0), 1);
}

TEST(UpdateBits, DensityOneIsFixedPoint) {
  for (int k = 1; k <= 16; ++k) EXPECT_EQ(update_bits(k, 1.0), k);
}

TEST(UpdateBits, RoundingModes) {
  EXPECT_EQ(update_bits(10, 0.55, Rounding::kNearest), 6);
  EXPECT_EQ(update_bits(10, 0.55, Rounding::kFloor), 5);
  EXPECT_EQ(update_bits(10, 0.51, Rounding::kCeil), 6);
}

TEST(BitWidthPolicy, UniformAndToString) {
  const BitWidthPolicy p = BitWidthPolicy::uniform(3, 16);
  EXPECT_EQ(p.size(), 3);
  EXPECT_EQ(p.to_string(), "[16, 16, 16]");
}

TEST(BitWidthPolicy, UpdatedRespectsFrozen) {
  const BitWidthPolicy p({16, 16, 16});
  const BitWidthPolicy q = p.updated({0.5, 0.5, 0.5}, {true, false, true});
  EXPECT_EQ(q.at(0), 16);
  EXPECT_EQ(q.at(1), 8);
  EXPECT_EQ(q.at(2), 16);
}

TEST(BitWidthPolicy, UpdatedSizeMismatchThrows) {
  const BitWidthPolicy p({16, 16});
  EXPECT_THROW(p.updated({0.5}, {false, false}), std::invalid_argument);
}

TEST(BitWidthPolicy, HardwareRounded) {
  const BitWidthPolicy p({1, 3, 5, 9, 16});
  const BitWidthPolicy q = p.hardware_rounded();
  EXPECT_EQ(q.bits(), (std::vector<int>{2, 4, 8, 16, 16}));
}

TEST(BitWidthPolicy, IterativeUpdatesConvergeAtDensityOne) {
  // Property behind Algorithm 1's termination: once AD = 1.0 everywhere,
  // eqn 3 is a fixed point and the policy stops changing.
  BitWidthPolicy p({16, 12, 9});
  const std::vector<bool> frozen{false, false, false};
  p = p.updated({0.5, 0.5, 0.5}, frozen);
  const BitWidthPolicy fixed = p.updated({1.0, 1.0, 1.0}, frozen);
  EXPECT_EQ(p, fixed);
}

}  // namespace
}  // namespace adq::quant
