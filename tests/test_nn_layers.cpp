// Behavioural tests for NN layers: forward semantics, caching rules,
// quantization integration, channel masking, train/eval switching.
// (Gradient correctness is covered separately in test_nn_gradcheck.cpp.)
#include <gtest/gtest.h>

#include <numeric>

#include "nn/batchnorm.h"
#include "nn/conv2d.h"
#include "nn/flatten.h"
#include "nn/init.h"
#include "nn/linear.h"
#include "nn/loss.h"
#include "nn/optimizer.h"
#include "nn/pool.h"
#include "nn/relu.h"
#include "nn/residual.h"
#include "nn/sequential.h"
#include "tensor/ops.h"
#include "tensor/rng.h"

namespace adq::nn {
namespace {

TEST(Conv2d, IdentityKernelPassesThrough) {
  Conv2d conv(1, 1, 1, 1, 0, /*use_bias=*/false);
  conv.set_quantization_enabled(false);  // exactness test: no 16-bit snap
  conv.weight().value[0] = 1.0f;
  Tensor x(Shape{1, 1, 3, 3});
  std::iota(x.data(), x.data() + x.numel(), 0.0f);
  const Tensor y = conv.forward(x);
  EXPECT_TRUE(allclose(x, y, 1e-6f));
}

TEST(Conv2d, KnownConvolutionValue) {
  // 2x2 all-ones kernel over a 2x2 all-twos image, no padding: sum = 8.
  Conv2d conv(1, 1, 2, 1, 0, false);
  conv.weight().value.fill(1.0f);
  Tensor x(Shape{1, 1, 2, 2}, 2.0f);
  const Tensor y = conv.forward(x);
  EXPECT_EQ(y.shape(), Shape({1, 1, 1, 1}));
  EXPECT_FLOAT_EQ(y[0], 8.0f);
}

TEST(Conv2d, StrideAndPaddingGeometry) {
  Conv2d conv(3, 8, 3, 2, 1, false);
  Tensor x(Shape{2, 3, 8, 8});
  const Tensor y = conv.forward(x);
  EXPECT_EQ(y.shape(), Shape({2, 8, 4, 4}));
}

TEST(Conv2d, BiasAddsPerChannel) {
  Conv2d conv(1, 2, 1, 1, 0, /*use_bias=*/true);
  conv.weight().value.zero();
  conv.bias()->value[0] = 1.5f;
  conv.bias()->value[1] = -2.0f;
  Tensor x(Shape{1, 1, 2, 2}, 3.0f);
  const Tensor y = conv.forward(x);
  EXPECT_FLOAT_EQ(y.at(0, 0, 0, 0), 1.5f);
  EXPECT_FLOAT_EQ(y.at(0, 1, 1, 1), -2.0f);
}

TEST(Conv2d, WrongInputChannelsThrows) {
  Conv2d conv(3, 4, 3, 1, 1, false);
  Tensor x(Shape{1, 2, 8, 8});
  EXPECT_THROW(conv.forward(x), std::invalid_argument);
}

TEST(Conv2d, QuantizationCoarsensOutput) {
  Rng rng(1);
  Conv2d conv(2, 4, 3, 1, 1, false);
  init_conv(conv, rng);
  Tensor x(Shape{1, 2, 6, 6});
  rng.fill_normal(x, 0.0f, 1.0f);
  conv.set_quantization_enabled(false);
  const Tensor full = conv.forward(x);
  conv.set_quantization_enabled(true);
  conv.set_bits(2);
  const Tensor quant = conv.forward(x);
  EXPECT_FALSE(allclose(full, quant, 1e-4f));  // 2-bit is visibly coarser
  conv.set_bits(16);
  const Tensor fine = conv.forward(x);
  EXPECT_TRUE(allclose(full, fine, 0.05f));  // 16-bit is close to FP
}

TEST(Conv2d, PrunedChannelsAreZeroForwardAndBackward) {
  Rng rng(2);
  Conv2d conv(2, 4, 3, 1, 1, false);
  init_conv(conv, rng);
  conv.set_active_out_channels(2);
  Tensor x(Shape{1, 2, 4, 4});
  rng.fill_normal(x, 0.0f, 1.0f);
  const Tensor y = conv.forward(x);
  for (std::int64_t c = 2; c < 4; ++c) {
    for (std::int64_t i = 0; i < 16; ++i) EXPECT_EQ(y.at(0, c, i / 4, i % 4), 0.0f);
  }
  // Backward: gradient into pruned weight rows must be zero.
  Tensor g(y.shape(), 1.0f);
  conv.backward(g);
  const std::int64_t row = conv.weight().value.shape().dim(1);
  for (std::int64_t i = 2 * row; i < 4 * row; ++i) {
    EXPECT_EQ(conv.weight().grad[i], 0.0f);
  }
  // Live rows do receive gradient.
  float live = 0.0f;
  for (std::int64_t i = 0; i < 2 * row; ++i) live += std::abs(conv.weight().grad[i]);
  EXPECT_GT(live, 0.0f);
}

TEST(Conv2d, ActiveChannelBoundsChecked) {
  Conv2d conv(2, 4, 3, 1, 1, false);
  EXPECT_THROW(conv.set_active_out_channels(0), std::invalid_argument);
  EXPECT_THROW(conv.set_active_out_channels(5), std::invalid_argument);
  EXPECT_THROW(conv.set_active_in_channels(3), std::invalid_argument);
}

TEST(Linear, MatchesManualAffine) {
  Linear fc(3, 2, /*use_bias=*/true);
  fc.set_quantization_enabled(false);  // exactness test: no 16-bit snap
  // W = [[1,0,0],[0,2,0]], b = [0.5, -1]
  fc.weight().value.zero();
  fc.weight().value.at(0, 0) = 1.0f;
  fc.weight().value.at(1, 1) = 2.0f;
  fc.bias()->value[0] = 0.5f;
  fc.bias()->value[1] = -1.0f;
  Tensor x(Shape{1, 3}, std::vector<float>{3.0f, 4.0f, 5.0f});
  const Tensor y = fc.forward(x);
  EXPECT_FLOAT_EQ(y[0], 3.5f);
  EXPECT_FLOAT_EQ(y[1], 7.0f);
}

TEST(Linear, MeterObservesLogitsOnlyInTraining) {
  Linear fc(2, 2, true);
  ad::DensityMeter meter;
  fc.attach_meter(&meter);
  Tensor x(Shape{1, 2}, 1.0f);
  fc.weight().value.fill(1.0f);
  fc.set_training(false);
  fc.forward(x);
  EXPECT_EQ(meter.observed_total(), 0);
  fc.set_training(true);
  fc.forward(x);
  EXPECT_EQ(meter.observed_total(), 2);
}

TEST(BatchNorm, NormalizesBatchStatistics) {
  BatchNorm2d bn(2);
  Rng rng(3);
  Tensor x(Shape{4, 2, 3, 3});
  rng.fill_normal(x, 5.0f, 3.0f);
  const Tensor y = bn.forward(x);
  // Per-channel mean ~0, var ~1 after normalisation with gamma=1, beta=0.
  for (std::int64_t c = 0; c < 2; ++c) {
    double s = 0.0, s2 = 0.0;
    for (std::int64_t b = 0; b < 4; ++b) {
      for (std::int64_t i = 0; i < 9; ++i) {
        const float v = y.at(b, c, i / 3, i % 3);
        s += v;
        s2 += static_cast<double>(v) * v;
      }
    }
    const double n = 36.0;
    EXPECT_NEAR(s / n, 0.0, 1e-4);
    EXPECT_NEAR(s2 / n, 1.0, 1e-2);
  }
}

TEST(BatchNorm, EvalUsesRunningStats) {
  BatchNorm2d bn(1, /*momentum=*/1.0f);  // running stats = last batch
  Tensor x(Shape{2, 1, 2, 2}, 4.0f);
  // Constant input: batch var 0.
  bn.forward(x);
  bn.set_training(false);
  Tensor probe(Shape{1, 1, 2, 2}, 4.0f);
  const Tensor y = bn.forward(probe);
  for (std::int64_t i = 0; i < y.numel(); ++i) EXPECT_NEAR(y[i], 0.0f, 1e-2f);
}

TEST(BatchNorm, GammaBetaAffectOutput) {
  BatchNorm2d bn(1);
  bn.gamma().value[0] = 2.0f;
  bn.beta().value[0] = 1.0f;
  Rng rng(4);
  Tensor x(Shape{4, 1, 2, 2});
  rng.fill_normal(x, 0.0f, 1.0f);
  const Tensor y = bn.forward(x);
  double s = 0.0;
  for (std::int64_t i = 0; i < y.numel(); ++i) s += y[i];
  EXPECT_NEAR(s / static_cast<double>(y.numel()), 1.0, 1e-4);  // beta shifts mean
}

TEST(BatchNorm, MasksPrunedChannels) {
  BatchNorm2d bn(3);
  bn.beta().value.fill(7.0f);  // beta would resurrect dead channels
  bn.set_active_channels(1);
  Tensor x(Shape{1, 3, 2, 2}, 1.0f);
  const Tensor y = bn.forward(x);
  for (std::int64_t c = 1; c < 3; ++c) {
    for (std::int64_t i = 0; i < 4; ++i) EXPECT_EQ(y.at(0, c, i / 2, i % 2), 0.0f);
  }
}

TEST(ReLU, ForwardClampsAndMetersDensity) {
  ReLU relu;
  ad::DensityMeter meter;
  relu.attach_meter(&meter);
  Tensor x(Shape{1, 1, 2, 2}, std::vector<float>{-1.0f, 2.0f, -3.0f, 4.0f});
  const Tensor y = relu.forward(x);
  EXPECT_EQ(y[0], 0.0f);
  EXPECT_EQ(y[1], 2.0f);
  EXPECT_DOUBLE_EQ(meter.current_density(), 0.5);
}

TEST(ReLU, NoMeteringInEvalMode) {
  ReLU relu;
  ad::DensityMeter meter;
  relu.attach_meter(&meter);
  relu.set_training(false);
  Tensor x(Shape{1, 1, 1, 2}, 1.0f);
  relu.forward(x);
  EXPECT_EQ(meter.observed_total(), 0);
}

TEST(ReLU, MeteredChannelsRestrictCounting) {
  ReLU relu;
  ad::DensityMeter meter;
  relu.attach_meter(&meter);
  relu.set_metered_channels(1);
  // Channel 0 all positive, channel 1 all negative (would halve density).
  Tensor x(Shape{1, 2, 1, 2}, std::vector<float>{1.0f, 2.0f, -1.0f, -2.0f});
  relu.forward(x);
  EXPECT_DOUBLE_EQ(meter.current_density(), 1.0);
  EXPECT_EQ(meter.observed_total(), 2);
}

TEST(ReLU, BackwardGatesBySign) {
  ReLU relu;
  Tensor x(Shape{1, 1, 1, 3}, std::vector<float>{-1.0f, 0.0f, 2.0f});
  relu.forward(x);
  Tensor g(x.shape(), 1.0f);
  const Tensor gx = relu.backward(g);
  EXPECT_EQ(gx[0], 0.0f);
  EXPECT_EQ(gx[1], 0.0f);  // ReLU'(0) = 0 by our convention
  EXPECT_EQ(gx[2], 1.0f);
}

TEST(MaxPool, SelectsWindowMaximum) {
  MaxPool2d pool(2, 2);
  Tensor x(Shape{1, 1, 2, 2}, std::vector<float>{1.0f, 5.0f, 3.0f, 2.0f});
  const Tensor y = pool.forward(x);
  EXPECT_EQ(y.shape(), Shape({1, 1, 1, 1}));
  EXPECT_FLOAT_EQ(y[0], 5.0f);
}

TEST(MaxPool, BackwardRoutesToArgmax) {
  MaxPool2d pool(2, 2);
  Tensor x(Shape{1, 1, 2, 2}, std::vector<float>{1.0f, 5.0f, 3.0f, 2.0f});
  pool.forward(x);
  Tensor g(Shape{1, 1, 1, 1}, 7.0f);
  const Tensor gx = pool.backward(g);
  EXPECT_EQ(gx[0], 0.0f);
  EXPECT_EQ(gx[1], 7.0f);
  EXPECT_EQ(gx[2], 0.0f);
}

TEST(MaxPool, TooSmallInputThrows) {
  MaxPool2d pool(2, 2);
  Tensor x(Shape{1, 1, 1, 1});
  EXPECT_THROW(pool.forward(x), std::invalid_argument);
}

TEST(GlobalAvgPool, AveragesSpatialExtent) {
  GlobalAvgPool gap;
  Tensor x(Shape{1, 2, 2, 2});
  for (std::int64_t i = 0; i < 4; ++i) x[i] = 2.0f;      // channel 0
  for (std::int64_t i = 4; i < 8; ++i) x[i] = 6.0f;      // channel 1
  const Tensor y = gap.forward(x);
  EXPECT_EQ(y.shape(), Shape({1, 2}));
  EXPECT_FLOAT_EQ(y[0], 2.0f);
  EXPECT_FLOAT_EQ(y[1], 6.0f);
}

TEST(Flatten, RoundTripsShape) {
  Flatten flat;
  Tensor x(Shape{2, 3, 4, 4});
  const Tensor y = flat.forward(x);
  EXPECT_EQ(y.shape(), Shape({2, 48}));
  const Tensor gx = flat.backward(Tensor(Shape{2, 48}, 1.0f));
  EXPECT_EQ(gx.shape(), x.shape());
}

TEST(Sequential, ChainsAndPropagatesTrainingFlag) {
  Sequential seq;
  auto* relu = seq.emplace<ReLU>();
  auto* flat = seq.emplace<Flatten>();
  (void)flat;
  seq.set_training(false);
  EXPECT_FALSE(relu->training());
  Tensor x(Shape{1, 1, 2, 2}, -1.0f);
  const Tensor y = seq.forward(x);
  EXPECT_EQ(y.shape(), Shape({1, 4}));
  for (std::int64_t i = 0; i < 4; ++i) EXPECT_EQ(y[i], 0.0f);
}

TEST(Sequential, CollectsAllParameters) {
  Sequential seq;
  seq.emplace<Conv2d>(1, 2, 3, 1, 1, true);
  seq.emplace<BatchNorm2d>(2);
  std::vector<Parameter*> params;
  seq.collect_parameters(params);
  EXPECT_EQ(params.size(), 4u);  // conv W+b, bn gamma+beta
}

TEST(Residual, IdentitySkipAddsInput) {
  Rng rng(5);
  ResidualBlock block(4, 4, 1);
  // Zero both convs: output = relu(0 + x) = relu(x).
  block.conv1().weight().value.zero();
  block.conv2().weight().value.zero();
  Tensor x(Shape{1, 4, 4, 4});
  rng.fill_normal(x, 0.0f, 1.0f);
  const Tensor y = block.forward(x);
  const Tensor expect = relu(x);
  // Skip path is fake-quantized at 16 bits -> near-exact.
  EXPECT_TRUE(allclose(y, expect, 1e-3f));
}

TEST(Residual, DownsampleChangesGeometry) {
  Rng rng(6);
  ResidualBlock block(4, 8, 2);
  EXPECT_TRUE(block.has_downsample());
  init_residual_block(block, rng);
  Tensor x(Shape{2, 4, 8, 8});
  const Tensor y = block.forward(x);
  EXPECT_EQ(y.shape(), Shape({2, 8, 4, 4}));
}

TEST(Residual, SkipQuantizerTracksConv2Bits) {
  ResidualBlock block(4, 8, 2);
  block.set_bits_conv2(3);
  EXPECT_EQ(block.skip_quantizer().bits(), 3);
  EXPECT_EQ(block.conv2().bits(), 3);
  EXPECT_EQ(block.downsample_conv()->bits(), 3);
  // conv1 unaffected.
  block.set_bits_conv1(7);
  EXPECT_EQ(block.conv1().bits(), 7);
  EXPECT_EQ(block.skip_quantizer().bits(), 3);
}

TEST(Residual, PrunedOutputStaysDeadDespiteIdentitySkip) {
  Rng rng(7);
  ResidualBlock block(4, 4, 1);
  init_residual_block(block, rng);
  block.set_active_out_channels(2);
  Tensor x(Shape{1, 4, 4, 4}, 1.0f);  // nonzero skip into pruned channels
  const Tensor y = block.forward(x);
  for (std::int64_t c = 2; c < 4; ++c) {
    for (std::int64_t i = 0; i < 16; ++i) {
      EXPECT_EQ(y.at(0, c, i / 4, i % 4), 0.0f);
    }
  }
}

TEST(Loss, UniformLogitsGiveLogC) {
  SoftmaxCrossEntropy loss;
  Tensor logits(Shape{2, 4});
  const double l = loss.forward(logits, {0, 3});
  EXPECT_NEAR(l, std::log(4.0), 1e-6);
}

TEST(Loss, PerfectPredictionNearZero) {
  SoftmaxCrossEntropy loss;
  Tensor logits(Shape{1, 3});
  logits[0] = 100.0f;
  EXPECT_NEAR(loss.forward(logits, {0}), 0.0, 1e-6);
}

TEST(Loss, GradientSumsToZeroPerRow) {
  SoftmaxCrossEntropy loss;
  Rng rng(8);
  Tensor logits(Shape{3, 5});
  rng.fill_normal(logits, 0.0f, 2.0f);
  loss.forward(logits, {1, 2, 4});
  const Tensor g = loss.backward();
  for (std::int64_t b = 0; b < 3; ++b) {
    double s = 0.0;
    for (std::int64_t c = 0; c < 5; ++c) s += g.at(b, c);
    EXPECT_NEAR(s, 0.0, 1e-6);
  }
}

TEST(Loss, LabelOutOfRangeThrows) {
  SoftmaxCrossEntropy loss;
  Tensor logits(Shape{1, 3});
  EXPECT_THROW(loss.forward(logits, {3}), std::invalid_argument);
}

TEST(Optimizer, SgdDescendsQuadratic) {
  // Minimise f(w) = (w - 3)^2 by hand-fed gradients.
  Parameter w("w", Shape{1});
  w.value[0] = 0.0f;
  Sgd opt({&w}, 0.1f, 0.0f);
  for (int i = 0; i < 100; ++i) {
    w.zero_grad();
    w.grad[0] = 2.0f * (w.value[0] - 3.0f);
    opt.step();
  }
  EXPECT_NEAR(w.value[0], 3.0f, 1e-3f);
}

TEST(Optimizer, AdamDescendsQuadratic) {
  Parameter w("w", Shape{1});
  w.value[0] = 0.0f;
  Adam opt({&w}, 0.1f);
  for (int i = 0; i < 300; ++i) {
    w.zero_grad();
    w.grad[0] = 2.0f * (w.value[0] - 3.0f);
    opt.step();
  }
  EXPECT_NEAR(w.value[0], 3.0f, 1e-2f);
}

TEST(Optimizer, ZeroGradClearsAll) {
  Parameter a("a", Shape{2}), b("b", Shape{2});
  a.grad.fill(1.0f);
  b.grad.fill(2.0f);
  Sgd opt({&a, &b}, 0.1f);
  opt.zero_grad();
  EXPECT_EQ(a.grad[0], 0.0f);
  EXPECT_EQ(b.grad[1], 0.0f);
}

TEST(Optimizer, WeightDecayShrinksWeights) {
  Parameter w("w", Shape{1});
  w.value[0] = 1.0f;
  Sgd opt({&w}, 0.1f, 0.0f, /*weight_decay=*/0.5f);
  w.zero_grad();  // pure decay
  opt.step();
  EXPECT_LT(w.value[0], 1.0f);
}

TEST(Init, KaimingVarianceMatchesFanIn) {
  Rng rng(9);
  Tensor w(Shape{256, 144});
  kaiming_normal(w, 144, rng);
  double s2 = 0.0;
  for (std::int64_t i = 0; i < w.numel(); ++i) s2 += static_cast<double>(w[i]) * w[i];
  const double var = s2 / static_cast<double>(w.numel());
  EXPECT_NEAR(var, 2.0 / 144.0, 2e-3);
}

}  // namespace
}  // namespace adq::nn
