// Serving-registry and precision-ladder tests.
//
// The LadderController is exercised as a pure state machine on synthetic
// (p99, queue depth) traces: prompt degradation after consecutive
// breaches, cautious recovery after consecutive clears, a hold band that
// provably cannot oscillate, and hard bounds at both ends of the ladder.
// The ModelRegistry tests run real compiled plans: multi-model routing
// with per-model stats, zero-downtime hot swap under live traffic with
// bit-identical per-plan results, fingerprint-naming rejection of
// incompatible swaps, SLO-driven step-down under an unmeetable target,
// the load-shedding baseline, and drain/no-drain removal semantics.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <future>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "infer/engine.h"
#include "infer/plan.h"
#include "infer/plan_io.h"
#include "models/mobilenet.h"
#include "models/resnet.h"
#include "models/vgg.h"
#include "serve/ladder.h"
#include "serve/registry.h"
#include "serve/request_queue.h"
#include "tensor/ops.h"
#include "tensor/rng.h"

namespace adq::serve {
namespace {

using infer::InferencePlan;
using infer::IntInferenceEngine;

// ---------------------------------------------------------------------------
// LadderController as a pure function of its observation trace.
// ---------------------------------------------------------------------------

LadderSlo test_slo() {
  LadderSlo slo;
  slo.p99_us = 100.0;
  slo.max_queue_depth = 10;
  slo.clear_fraction = 0.5;  // clear band: p99 <= 50 AND depth <= 5
  slo.breach_ticks = 2;
  slo.clear_ticks = 3;
  return slo;
}

TEST(Ladder, StepsDownAfterConsecutiveLatencyBreaches) {
  LadderController c(3, test_slo());
  EXPECT_EQ(c.on_tick(150.0, 0), 0);  // first breach: not yet
  EXPECT_EQ(c.on_tick(150.0, 0), 1);  // second consecutive: step down
}

TEST(Ladder, QueueDepthAloneBreaches) {
  LadderController c(3, test_slo());
  EXPECT_EQ(c.on_tick(10.0, 20), 0);  // latency fine, queue over cap
  EXPECT_EQ(c.on_tick(10.0, 20), 1);
}

TEST(Ladder, NonConsecutiveBreachesNeverStep) {
  LadderController c(3, test_slo());
  for (int i = 0; i < 50; ++i) {
    EXPECT_EQ(c.on_tick(150.0, 0), 0);  // breach...
    EXPECT_EQ(c.on_tick(80.0, 0), 0);   // ...but the band resets the run
  }
}

TEST(Ladder, RecoversOnlyAfterConsecutiveClears) {
  LadderController c(3, test_slo());
  c.on_tick(150.0, 0);
  ASSERT_EQ(c.on_tick(150.0, 0), 1);
  EXPECT_EQ(c.on_tick(40.0, 2), 1);  // clear run 1
  EXPECT_EQ(c.on_tick(40.0, 2), 1);  // clear run 2
  EXPECT_EQ(c.on_tick(40.0, 2), 0);  // clear run 3: step back up
}

TEST(Ladder, ClearNeedsBothSignalsBelowTheBand) {
  LadderController c(3, test_slo());
  c.on_tick(150.0, 0);
  ASSERT_EQ(c.on_tick(150.0, 0), 1);
  // p99 clear but the queue above clear_fraction x cap: never recovers.
  for (int i = 0; i < 20; ++i) EXPECT_EQ(c.on_tick(40.0, 8), 1);
}

TEST(Ladder, HoldBandPreventsOscillation) {
  LadderController c(3, test_slo());
  c.on_tick(150.0, 0);
  ASSERT_EQ(c.on_tick(150.0, 0), 1);
  // A steady signal between clear and breach thresholds holds the rung
  // forever — hysteresis cannot oscillate on it.
  for (int i = 0; i < 100; ++i) EXPECT_EQ(c.on_tick(80.0, 7), 1);
}

TEST(Ladder, TransitionResetsTheBreachRun) {
  LadderController c(4, test_slo());
  c.on_tick(150.0, 0);
  ASSERT_EQ(c.on_tick(150.0, 0), 1);
  // Fresh evidence required for the next step: one more breach holds,
  // the second steps again.
  EXPECT_EQ(c.on_tick(150.0, 0), 1);
  EXPECT_EQ(c.on_tick(150.0, 0), 2);
}

TEST(Ladder, ClampsAtBothEndsOfTheLadder) {
  LadderController c(2, test_slo());
  for (int i = 0; i < 20; ++i) c.on_tick(500.0, 100);
  EXPECT_EQ(c.step(), 1);  // bottom rung, never past it
  for (int i = 0; i < 50; ++i) c.on_tick(1.0, 0);
  EXPECT_EQ(c.step(), 0);  // top rung, never above it
}

TEST(Ladder, ValidatesConstruction) {
  EXPECT_THROW(LadderController(0, test_slo()), std::invalid_argument);
  LadderSlo bad = test_slo();
  bad.p99_us = 0.0;
  EXPECT_THROW(LadderController(2, bad), std::invalid_argument);
  bad = test_slo();
  bad.max_queue_depth = 0;
  EXPECT_THROW(LadderController(2, bad), std::invalid_argument);
  bad = test_slo();
  bad.breach_ticks = 0;
  EXPECT_THROW(LadderController(2, bad), std::invalid_argument);
  bad = test_slo();
  bad.clear_fraction = 1.5;
  EXPECT_THROW(LadderController(2, bad), std::invalid_argument);
}

// Scoped environment override; restores to unset on destruction.
struct EnvVar {
  std::string name;
  EnvVar(const char* n, const char* v) : name(n) { setenv(n, v, 1); }
  ~EnvVar() { unsetenv(name.c_str()); }
};

TEST(Ladder, SloFromEnvOverridesAndFailsFast) {
  unsetenv("ADQ_SLO_P99_US");
  EXPECT_DOUBLE_EQ(slo_from_env(test_slo()).p99_us, 100.0);
  {
    EnvVar env("ADQ_SLO_P99_US", "2500.5");
    EXPECT_DOUBLE_EQ(slo_from_env(test_slo()).p99_us, 2500.5);
  }
  {
    EnvVar env("ADQ_SLO_P99_US", "fast");
    EXPECT_THROW(slo_from_env(test_slo()), std::invalid_argument);
  }
  {
    EnvVar env("ADQ_SLO_P99_US", "-3");
    EXPECT_THROW(slo_from_env(test_slo()), std::invalid_argument);
  }
}

TEST(Ladder, PinnedStepFromEnvGrammar) {
  unsetenv("ADQ_LADDER");
  EXPECT_EQ(pinned_step_from_env(), -1);
  {
    EnvVar env("ADQ_LADDER", "on");
    EXPECT_EQ(pinned_step_from_env(), -1);
  }
  {
    EnvVar env("ADQ_LADDER", "off");
    EXPECT_EQ(pinned_step_from_env(), 0);
  }
  {
    EnvVar env("ADQ_LADDER", "2");
    EXPECT_EQ(pinned_step_from_env(), 2);
  }
  {
    EnvVar env("ADQ_LADDER", "-2");
    EXPECT_THROW(pinned_step_from_env(), std::invalid_argument);
  }
  {
    EnvVar env("ADQ_LADDER", "sometimes");
    EXPECT_THROW(pinned_step_from_env(), std::invalid_argument);
  }
}

// ---------------------------------------------------------------------------
// ModelRegistry against real compiled plans.
// ---------------------------------------------------------------------------

InferencePlan vgg_plan(int bits, std::uint64_t seed = 5, int classes = 10) {
  Rng rng(seed);
  models::VggConfig cfg;
  cfg.width_mult = 0.0625;
  cfg.num_classes = classes;
  auto model = models::build_vgg19(cfg, rng);
  model->set_training(false);
  for (int i = 0; i < model->unit_count(); ++i) {
    if (!model->unit(i).frozen) model->unit(i).set_bits(bits);
  }
  return infer::compile(*model);
}

InferencePlan mobilenet_plan(int bits, std::uint64_t seed = 6) {
  Rng rng(seed);
  models::MobileNetConfig cfg;
  cfg.width_mult = 0.25;
  cfg.num_classes = 10;
  auto model = models::build_mobilenet_small(cfg, rng);
  model->set_training(false);
  for (int i = 0; i < model->unit_count(); ++i) {
    if (!model->unit(i).frozen) model->unit(i).set_bits(bits);
  }
  return infer::compile(*model);
}

Tensor cifar_sample(Rng& rng) {
  Tensor x(Shape{3, 32, 32});
  rng.fill_normal(x, 0.0f, 1.0f);
  return x;
}

// Reference result for one sample on one plan's engine.
Tensor direct_logits(const IntInferenceEngine& engine, const Tensor& sample) {
  const std::vector<const Tensor*> one{&sample};
  return take_sample(engine.forward(stack_samples(one)), 0);
}

std::string hex_fp(std::uint64_t fp) {
  char buf[20];
  std::snprintf(buf, sizeof(buf), "0x%016llx",
                static_cast<unsigned long long>(fp));
  return buf;
}

ModelConfig hermetic_config() {
  ModelConfig cfg;
  cfg.use_env = false;  // tests must not inherit ADQ_LADDER / ADQ_SLO_P99_US
  return cfg;
}

TEST(Registry, ServesMultipleModelsWithPerModelStats) {
  ModelRegistry registry;
  ModelConfig cfg = hermetic_config();
  cfg.pin_step = 0;
  // Batch of one: the engine's activation ranges are observed per batch,
  // so only batch-1 results are comparable to direct single-sample calls.
  cfg.max_batch = 1;
  cfg.max_wait_us = 0;
  registry.add_model("vgg", {vgg_plan(8)}, cfg);
  registry.add_model("mobilenet", {mobilenet_plan(8)}, cfg);
  ASSERT_EQ(registry.model_names(),
            (std::vector<std::string>{"mobilenet", "vgg"}));
  EXPECT_EQ(registry.sample_shape("vgg"), (Shape{3, 32, 32}));

  const IntInferenceEngine vgg_engine(vgg_plan(8));
  const IntInferenceEngine mob_engine(mobilenet_plan(8));

  Rng rng(41);
  std::vector<Tensor> samples;
  std::vector<std::future<InferenceResult>> vgg_f, mob_f;
  for (int i = 0; i < 8; ++i) samples.push_back(cifar_sample(rng));
  for (const Tensor& s : samples) {
    vgg_f.push_back(registry.submit("vgg", s));
    mob_f.push_back(registry.submit("mobilenet", s));
  }
  for (int i = 0; i < 8; ++i) {
    const InferenceResult rv = vgg_f[static_cast<std::size_t>(i)].get();
    const InferenceResult rm = mob_f[static_cast<std::size_t>(i)].get();
    // Routing is by name: each result is bit-identical to the named
    // model's own engine on that sample.
    const Tensor ev = direct_logits(vgg_engine, samples[static_cast<std::size_t>(i)]);
    const Tensor em = direct_logits(mob_engine, samples[static_cast<std::size_t>(i)]);
    ASSERT_EQ(rv.logits.numel(), ev.numel());
    for (std::int64_t j = 0; j < ev.numel(); ++j) {
      ASSERT_EQ(rv.logits[j], ev[j]);
      ASSERT_EQ(rm.logits[j], em[j]);
    }
    EXPECT_EQ(rv.ladder_step, 0);
  }
  registry.shutdown();
  EXPECT_EQ(registry.stats("vgg").requests, 8u);
  EXPECT_EQ(registry.stats("mobilenet").requests, 8u);
  EXPECT_GT(registry.stats("vgg").p99_exec_us, 0.0);
}

TEST(Registry, ValidatesModelsAndSubmits) {
  ModelRegistry registry;
  EXPECT_THROW(registry.add_model("empty", std::vector<InferencePlan>{},
                                  hermetic_config()),
               std::invalid_argument);
  registry.add_model("vgg", {vgg_plan(8)}, hermetic_config());
  EXPECT_THROW(registry.add_model("vgg", {vgg_plan(8)}, hermetic_config()),
               std::invalid_argument);
  Rng rng(42);
  EXPECT_THROW(registry.submit("nope", cifar_sample(rng)), std::out_of_range);
  EXPECT_THROW(registry.submit("vgg", Tensor(Shape{3, 16, 16})),
               std::invalid_argument);
  EXPECT_THROW(registry.hot_swap("vgg", 3, vgg_plan(8)), std::out_of_range);
}

TEST(Registry, RejectsIncompatibleLadderRungNamingFingerprints) {
  const InferencePlan rung0 = vgg_plan(8);
  const InferencePlan rung1 = vgg_plan(8, 5, /*classes=*/12);
  const std::string fp0 = hex_fp(infer::plan_fingerprint(rung0));
  const std::string fp1 = hex_fp(infer::plan_fingerprint(rung1));
  ModelRegistry registry;
  try {
    registry.add_model("vgg", {vgg_plan(8), vgg_plan(8, 5, 12)},
                       hermetic_config());
    FAIL() << "incompatible rung accepted";
  } catch (const std::invalid_argument& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("output dim 12 vs 10"), std::string::npos) << what;
    EXPECT_NE(what.find(fp0), std::string::npos) << what;
    EXPECT_NE(what.find(fp1), std::string::npos) << what;
  }
}

TEST(Registry, HotSwapRejectsShapeChangeNamingBothFingerprints) {
  ModelRegistry registry;
  registry.add_model("vgg", {vgg_plan(8)}, hermetic_config());
  const std::string incumbent = hex_fp(registry.rung_fingerprint("vgg", 0));

  // Different input geometry: a 16x16 ResNet plan.
  Rng rng(7);
  models::ResNetConfig rcfg;
  rcfg.width_mult = 0.0625;
  rcfg.num_classes = 10;
  rcfg.input_size = 16;
  auto resnet = models::build_resnet18(rcfg, rng);
  resnet->set_training(false);
  for (int i = 0; i < resnet->unit_count(); ++i) {
    if (!resnet->unit(i).frozen) resnet->unit(i).set_bits(8);
  }
  InferencePlan candidate = infer::compile(*resnet);
  const std::string cand_fp = hex_fp(infer::plan_fingerprint(candidate));

  try {
    registry.hot_swap("vgg", 0, std::move(candidate));
    FAIL() << "incompatible swap accepted";
  } catch (const std::invalid_argument& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find(incumbent), std::string::npos) << what;
    EXPECT_NE(what.find(cand_fp), std::string::npos) << what;
    EXPECT_NE(what.find("[3, 16, 16]"), std::string::npos) << what;
  }
  // The incumbent survived the rejected swap.
  EXPECT_EQ(hex_fp(registry.rung_fingerprint("vgg", 0)), incumbent);
}

TEST(Registry, HotSwapMidTrafficDropsNothingAndStaysBitIdenticalPerPlan) {
  const InferencePlan plan_a = vgg_plan(8);
  const InferencePlan plan_b = vgg_plan(4);  // same weights, 4-bit rung
  const std::uint64_t fp_a = infer::plan_fingerprint(plan_a);
  const std::uint64_t fp_b = infer::plan_fingerprint(plan_b);
  ASSERT_NE(fp_a, fp_b);
  const IntInferenceEngine engine_a(plan_a);
  const IntInferenceEngine engine_b(plan_b);

  ModelRegistry registry;
  ModelConfig cfg = hermetic_config();
  // max_batch = 1: the engine quantizes activations over the whole batch,
  // so per-request results are only batch-composition-independent (and
  // hence comparable to a direct single-sample call) at batch size 1.
  cfg.max_batch = 1;
  cfg.max_wait_us = 0;
  cfg.workers = 2;
  cfg.pin_step = 0;
  registry.add_model("vgg", {vgg_plan(8)}, cfg);

  constexpr int kRequests = 60;
  Rng rng(43);
  std::vector<Tensor> samples;
  std::vector<Tensor> want_a, want_b;
  samples.reserve(kRequests);
  for (int i = 0; i < kRequests; ++i) {
    samples.push_back(cifar_sample(rng));
    want_a.push_back(direct_logits(engine_a, samples.back()));
    want_b.push_back(direct_logits(engine_b, samples.back()));
  }

  // Producer thread keeps traffic flowing while the main thread swaps the
  // serving plan back and forth.
  std::vector<std::future<InferenceResult>> futures(kRequests);
  std::thread producer([&] {
    for (int i = 0; i < kRequests; ++i) {
      futures[static_cast<std::size_t>(i)] =
          registry.submit("vgg", samples[static_cast<std::size_t>(i)]);
      std::this_thread::sleep_for(std::chrono::microseconds(300));
    }
  });
  for (int swap = 0; swap < 6; ++swap) {
    std::this_thread::sleep_for(std::chrono::milliseconds(3));
    registry.hot_swap("vgg", 0, swap % 2 == 0 ? vgg_plan(4) : vgg_plan(8));
  }
  producer.join();

  // Zero drops: every future resolves with a value, and each result is
  // bit-identical to a direct call on the plan its fingerprint names.
  std::map<std::uint64_t, int> served_by;
  for (int i = 0; i < kRequests; ++i) {
    const InferenceResult r = futures[static_cast<std::size_t>(i)].get();
    ASSERT_TRUE(r.plan_fingerprint == fp_a || r.plan_fingerprint == fp_b);
    const Tensor& want = r.plan_fingerprint == fp_a
                             ? want_a[static_cast<std::size_t>(i)]
                             : want_b[static_cast<std::size_t>(i)];
    ASSERT_EQ(r.logits.numel(), want.numel());
    for (std::int64_t j = 0; j < want.numel(); ++j) {
      ASSERT_EQ(r.logits[j], want[j]) << "request " << i << " logit " << j;
    }
    ++served_by[r.plan_fingerprint];
  }

  // A final deterministic swap: traffic stopped, install B, one more
  // request MUST run on B (batches are FIFO and the swap happened before
  // the submit) — proves the swap really redirects traffic.
  registry.hot_swap("vgg", 0, vgg_plan(4));
  const InferenceResult last = registry.submit("vgg", samples[0]).get();
  EXPECT_EQ(last.plan_fingerprint, fp_b);
  for (std::int64_t j = 0; j < want_b[0].numel(); ++j) {
    ASSERT_EQ(last.logits[j], want_b[0][j]);
  }
  registry.shutdown();
  EXPECT_EQ(registry.stats("vgg").requests,
            static_cast<std::uint64_t>(kRequests) + 1);
}

TEST(Registry, LadderStepsDownUnderAnUnmeetableSlo) {
  ModelRegistry registry;
  ModelConfig cfg = hermetic_config();
  cfg.max_batch = 1;
  cfg.max_wait_us = 0;
  cfg.tick_interval_us = 0;     // every batch observes
  cfg.slo.p99_us = 0.001;       // unmeetable: any completion breaches
  cfg.slo.max_queue_depth = 1'000'000;
  cfg.slo.breach_ticks = 1;
  cfg.slo.clear_ticks = 1'000'000;  // never recovers during the test
  registry.add_model("vgg", {vgg_plan(8), vgg_plan(4), vgg_plan(2)}, cfg);
  ASSERT_EQ(registry.ladder_size("vgg"), 3);
  ASSERT_EQ(registry.current_step("vgg"), 0);

  Rng rng(44);
  const Tensor sample = cifar_sample(rng);
  for (int i = 0; i < 8; ++i) {
    (void)registry.submit("vgg", sample).get();  // one batch per request
  }
  // Every batch ticked a breach, so the controller walked to the bottom
  // rung and stayed (clamped).
  EXPECT_EQ(registry.current_step("vgg"), 2);
  const ServerStats::Snapshot s = registry.stats("vgg");
  EXPECT_EQ(s.step_downs, 2u);
  EXPECT_EQ(s.step_ups, 0u);
  EXPECT_EQ(s.current_step, 2);
  // The mix shows requests on more than one rung.
  EXPECT_GE(s.precision_mix.size(), 2u);
  registry.shutdown();
}

TEST(Registry, EnvPinsTheLadderAndRejectsGarbage) {
  {
    EnvVar env("ADQ_LADDER", "9");  // pins, clamped to the last rung
    ModelRegistry registry;
    ModelConfig cfg;
    cfg.use_env = true;
    registry.add_model("vgg", {vgg_plan(8), vgg_plan(4)}, cfg);
    EXPECT_EQ(registry.current_step("vgg"), 1);
    Rng rng(45);
    const InferenceResult r = registry.submit("vgg", cifar_sample(rng)).get();
    EXPECT_EQ(r.ladder_step, 1);
  }
  {
    EnvVar env("ADQ_SLO_P99_US", "soon");
    ModelRegistry registry;
    ModelConfig cfg;
    cfg.use_env = true;
    EXPECT_THROW(registry.add_model("vgg", {vgg_plan(8)}, cfg),
                 std::invalid_argument);
  }
}

TEST(Registry, ThreadsPerWorkerEnvAppliesAndRejectsGarbage) {
  {
    // A 1-thread intra-op budget on a 2-worker model still serves every
    // request — workers scale by batch-level concurrency alone.
    EnvVar env("ADQ_THREADS_PER_WORKER", "1");
    ModelRegistry registry;
    ModelConfig cfg;
    cfg.use_env = true;
    cfg.workers = 2;
    registry.add_model("vgg", {vgg_plan(8)}, cfg);
    Rng rng(47);
    std::vector<std::future<InferenceResult>> futures;
    for (int i = 0; i < 6; ++i) {
      futures.push_back(registry.submit("vgg", cifar_sample(rng)));
    }
    for (auto& f : futures) EXPECT_EQ(f.get().logits.shape().dim(0), 10);
    registry.shutdown();
    EXPECT_EQ(registry.stats("vgg").requests, 6u);
  }
  {
    EnvVar env("ADQ_THREADS_PER_WORKER", "2x");
    ModelRegistry registry;
    ModelConfig cfg;
    cfg.use_env = true;
    EXPECT_THROW(registry.add_model("vgg", {vgg_plan(8)}, cfg),
                 std::invalid_argument);
  }
  {
    // Explicit configs bypass the env (use_env = false): a hermetic test
    // server must not inherit the operator's partitioning.
    EnvVar env("ADQ_THREADS_PER_WORKER", "garbage");
    ModelRegistry registry;
    registry.add_model("vgg", {vgg_plan(8)}, hermetic_config());
    Rng rng(48);
    EXPECT_EQ(registry.submit("vgg", cifar_sample(rng)).get().top1 >= 0, true);
    registry.shutdown();
  }
}

TEST(Registry, SheddingBaselineRejectsWithServerOverloaded) {
  ModelRegistry registry;
  ModelConfig cfg = hermetic_config();
  cfg.max_batch = 1;
  cfg.max_wait_us = 0;
  cfg.shed_queue_depth = 2;
  registry.add_model("vgg", {vgg_plan(8)}, cfg);
  Rng rng(46);
  const Tensor sample = cifar_sample(rng);
  std::vector<std::future<InferenceResult>> accepted;
  int shed = 0;
  // Submitting far faster than one worker can serve ~1 ms forwards must
  // trip the depth-2 gate.
  for (int i = 0; i < 200; ++i) {
    try {
      accepted.push_back(registry.submit("vgg", sample));
    } catch (const ServerOverloaded&) {
      ++shed;
    }
  }
  EXPECT_GT(shed, 0);
  for (auto& f : accepted) (void)f.get();  // accepted ones all complete
  registry.shutdown();
  EXPECT_EQ(registry.stats("vgg").requests, accepted.size());
}

TEST(Registry, RemoveModelNoDrainFailsQueuedRequestsWithServerStopped) {
  ModelRegistry registry;
  ModelConfig cfg = hermetic_config();
  cfg.max_batch = 1;
  cfg.max_wait_us = 0;
  registry.add_model("vgg", {vgg_plan(8)}, cfg);
  Rng rng(47);
  const Tensor sample = cifar_sample(rng);
  std::vector<std::future<InferenceResult>> futures;
  for (int i = 0; i < 100; ++i) futures.push_back(registry.submit("vgg", sample));
  registry.remove_model("vgg", /*drain=*/false);

  int completed = 0, stopped = 0;
  for (auto& f : futures) {
    try {
      (void)f.get();
      ++completed;
    } catch (const ServerStopped&) {
      ++stopped;
    }
  }
  // Every accepted future resolved — some served, the queued rest failed
  // with the distinct shutdown error, none dropped or hung.
  EXPECT_EQ(completed + stopped, 100);
  EXPECT_GT(stopped, 0);
  EXPECT_THROW(registry.submit("vgg", sample), std::out_of_range);
  EXPECT_TRUE(registry.model_names().empty());
}

TEST(Registry, RemoveModelDrainCompletesEverything) {
  ModelRegistry registry;
  registry.add_model("vgg", {vgg_plan(8)}, hermetic_config());
  Rng rng(48);
  const Tensor sample = cifar_sample(rng);
  std::vector<std::future<InferenceResult>> futures;
  for (int i = 0; i < 32; ++i) futures.push_back(registry.submit("vgg", sample));
  registry.remove_model("vgg", /*drain=*/true);
  for (auto& f : futures) EXPECT_NO_THROW((void)f.get());
}

}  // namespace
}  // namespace adq::serve
