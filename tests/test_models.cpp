// Tests for the model zoo: spec shape math (the MAC/memory counts every
// energy number depends on), builder/unit wiring, bit-policy plumbing
// (including the ResNet skip rule), and channel-policy propagation.
#include <gtest/gtest.h>

#include "models/model.h"
#include "models/resnet.h"
#include "models/spec.h"
#include "models/vgg.h"
#include "tensor/rng.h"

namespace adq::models {
namespace {

TEST(LayerSpec, ConvMacAndMemFormulas) {
  // Paper section IV-A formulas on a hand-checkable layer:
  // I=3, O=64, p=3, N=M=32: N_MAC = 32^2*3*9*64, N_mem = 32^2*3 + 9*3*64.
  LayerSpec l;
  l.in_channels = l.active_in = 3;
  l.out_channels = l.active_out = 64;
  l.kernel = 3;
  l.in_size = 32;
  l.out_size = 32;
  EXPECT_EQ(l.macs(), 1024LL * 3 * 9 * 64);
  EXPECT_EQ(l.mem_accesses(), 1024LL * 3 + 9 * 3 * 64);
}

TEST(LayerSpec, PrunedChannelsShrinkCounts) {
  LayerSpec l;
  l.in_channels = 8;
  l.out_channels = 16;
  l.active_in = 4;
  l.active_out = 8;
  l.kernel = 3;
  l.in_size = l.out_size = 10;
  EXPECT_EQ(l.macs(), 100LL * 4 * 9 * 8);
}

TEST(Vgg19Spec, HasSeventeenUnits) {
  const ModelSpec spec = vgg19_spec(VggConfig{});
  EXPECT_EQ(spec.layers.size(), 17u);  // 16 convs + fc, no aux layers
  EXPECT_EQ(spec.unit_layers().size(), 17u);
  EXPECT_EQ(spec.layers.front().name, "conv1");
  EXPECT_EQ(spec.layers.back().kind, LayerKind::kLinear);
}

TEST(Vgg19Spec, FullWidthMacCountMatchesArchitecture) {
  // VGG19 on 32x32 CIFAR is known to be ~398M MACs; our spec must land
  // close (it is the denominator of every efficiency factor).
  const ModelSpec spec = vgg19_spec(VggConfig{});
  const double macs = static_cast<double>(spec.total_macs());
  EXPECT_GT(macs, 3.8e8);
  EXPECT_LT(macs, 4.1e8);
}

TEST(Vgg19Spec, PoolingHalvesFeatureMaps) {
  const ModelSpec spec = vgg19_spec(VggConfig{});
  EXPECT_EQ(spec.layers[0].in_size, 32);   // conv1
  EXPECT_EQ(spec.layers[2].in_size, 16);   // after pool1
  EXPECT_EQ(spec.layers[15].in_size, 2);   // last conv block
  EXPECT_EQ(spec.layers[16].in_channels, 512);  // fc sees 512*1*1
}

TEST(Vgg19Spec, WidthMultScalesChannels) {
  VggConfig cfg;
  cfg.width_mult = 0.25;
  const ModelSpec spec = vgg19_spec(cfg);
  EXPECT_EQ(spec.layers[0].out_channels, 16);
  EXPECT_EQ(spec.layers[15].out_channels, 128);
}

TEST(ResNet18Spec, UnitAndAuxLayout) {
  const ModelSpec spec = resnet18_spec(ResNetConfig{});
  EXPECT_EQ(spec.unit_layers().size(), static_cast<std::size_t>(kResNet18Units));
  int aux = 0;
  for (const LayerSpec& l : spec.layers) aux += l.aux ? 1 : 0;
  EXPECT_EQ(aux, 3);  // downsample convs at stages 2-4
  // Aux controllers point at the destination conv2 units.
  for (const LayerSpec& l : spec.layers) {
    if (l.aux) {
      EXPECT_GE(l.controller, 0);
      EXPECT_LT(l.controller, kResNet18Units);
    }
  }
}

TEST(ResNet18Spec, StridesHalveSizes) {
  const ModelSpec spec = resnet18_spec(ResNetConfig{});
  EXPECT_EQ(spec.layers.front().out_size, 32);  // stem keeps 32 (CIFAR stem)
  EXPECT_EQ(spec.layers.back().in_channels, 512);
}

TEST(ModelSpec, ApplyBitsPropagatesToAux) {
  ModelSpec spec = resnet18_spec(ResNetConfig{});
  std::vector<int> bits(static_cast<std::size_t>(kResNet18Units), 16);
  // Units: 0=stem, then (conv1, conv2) per block; s2b1.conv2 is unit 6.
  bits[6] = 5;
  spec.apply_bits(quant::BitWidthPolicy(bits));
  // Find the s2b1 down layer and check it follows its destination conv2.
  bool found = false;
  for (const LayerSpec& l : spec.layers) {
    if (l.aux && l.controller == 6) {
      EXPECT_EQ(l.bits, 5);
      found = true;
    }
  }
  EXPECT_TRUE(found);
}

TEST(ModelSpec, ApplyBitsSizeMismatchThrows) {
  ModelSpec spec = vgg19_spec(VggConfig{});
  EXPECT_THROW(spec.apply_bits(quant::BitWidthPolicy::uniform(3, 16)),
               std::invalid_argument);
}

TEST(ModelSpec, ApplyChannelsPropagatesFanIn) {
  ModelSpec spec = vgg19_spec(VggConfig{});
  std::vector<std::int64_t> ch;
  for (int i : spec.unit_layers()) ch.push_back(spec.layers[static_cast<std::size_t>(i)].out_channels);
  ch[0] = 19;  // prune conv1 64 -> 19
  spec.apply_channels(ch);
  EXPECT_EQ(spec.layers[0].active_out, 19);
  EXPECT_EQ(spec.layers[1].active_in, 19);  // conv2 fan-in follows
}

TEST(ModelSpec, ApplyChannelsScalesLinearFanIn) {
  ModelSpec spec = vgg19_spec(VggConfig{});
  std::vector<std::int64_t> ch;
  for (int i : spec.unit_layers()) ch.push_back(spec.layers[static_cast<std::size_t>(i)].out_channels);
  ch[15] = 256;  // prune conv16 512 -> 256
  spec.apply_channels(ch);
  EXPECT_EQ(spec.layers[16].active_in, spec.layers[16].in_channels / 2);
}

TEST(ModelSpec, UniformAndHardwareRounding) {
  ModelSpec spec = vgg19_spec(VggConfig{});
  std::vector<int> bits(17, 16);
  bits[3] = 3;
  bits[5] = 5;
  spec.apply_bits(quant::BitWidthPolicy(bits));
  const ModelSpec hw = spec.hardware_rounded();
  EXPECT_EQ(hw.layers[3].bits, 4);
  EXPECT_EQ(hw.layers[5].bits, 8);
  const ModelSpec uni = spec.with_uniform_bits(16);
  for (const LayerSpec& l : uni.layers) EXPECT_EQ(l.bits, 16);
}

TEST(BuildVgg19, ForwardShapeAndUnitWiring) {
  Rng rng(1);
  VggConfig cfg;
  cfg.width_mult = 0.0625;  // tiny for test speed
  cfg.num_classes = 10;
  auto model = build_vgg19(cfg, rng);
  EXPECT_EQ(model->unit_count(), kVgg19Units);
  EXPECT_TRUE(model->unit(0).frozen);
  EXPECT_TRUE(model->unit(16).frozen);
  for (int i = 1; i < 16; ++i) EXPECT_FALSE(model->unit(i).frozen);

  Tensor x(Shape{2, 3, 32, 32});
  rng.fill_normal(x, 0.0f, 1.0f);
  const Tensor y = model->forward(x);
  EXPECT_EQ(y.shape(), Shape({2, 10}));
}

TEST(BuildVgg19, BatchNormFreeVariant) {
  Rng rng(11);
  VggConfig cfg;
  cfg.width_mult = 0.0625;
  cfg.use_batchnorm = false;
  auto model = build_vgg19(cfg, rng);
  // No BN parameters: each conv carries a bias instead.
  EXPECT_EQ(model->unit(1).bn, nullptr);
  ASSERT_NE(model->unit(1).conv->bias(), nullptr);
  Tensor x(Shape{2, 3, 32, 32});
  rng.fill_normal(x, 0.0f, 1.0f);
  EXPECT_EQ(model->forward(x).shape(), Shape({2, 10}));
  // Channel pruning must still work without a BN to mask.
  model->unit(1).set_active_out_channels(4);
  EXPECT_EQ(model->forward(x).shape(), Shape({2, 10}));
}

TEST(BuildVgg19, MetersObserveDuringTrainingForward) {
  Rng rng(2);
  VggConfig cfg;
  cfg.width_mult = 0.0625;
  auto model = build_vgg19(cfg, rng);
  Tensor x(Shape{2, 3, 32, 32});
  rng.fill_normal(x, 0.0f, 1.0f);
  model->set_training(true);
  model->forward(x);
  for (int i = 0; i < model->unit_count(); ++i) {
    EXPECT_GT(model->unit(i).meter.observed_total(), 0) << "unit " << i;
  }
}

TEST(BuildResNet18, ForwardShapeAndSkipRule) {
  Rng rng(3);
  ResNetConfig cfg;
  cfg.width_mult = 0.125;
  cfg.num_classes = 7;
  auto model = build_resnet18(cfg, rng);
  EXPECT_EQ(model->unit_count(), kResNet18Units);

  Tensor x(Shape{2, 3, 32, 32});
  rng.fill_normal(x, 0.0f, 1.0f);
  const Tensor y = model->forward(x);
  EXPECT_EQ(y.shape(), Shape({2, 7}));

  // Setting bits on a block-conv2 unit must retarget the skip quantizer.
  QuantUnit& u = model->unit(2);  // first block's conv2
  ASSERT_EQ(u.role, UnitRole::kBlockConv2);
  u.set_bits(3);
  EXPECT_EQ(u.block->skip_quantizer().bits(), 3);
}

TEST(BuildResNet18, BitPolicyRoundTrip) {
  Rng rng(4);
  ResNetConfig cfg;
  cfg.width_mult = 0.125;
  auto model = build_resnet18(cfg, rng);
  std::vector<int> bits(static_cast<std::size_t>(kResNet18Units), 16);
  bits[1] = 5;
  bits[2] = 3;
  model->apply_bit_policy(quant::BitWidthPolicy(bits));
  EXPECT_EQ(model->bit_policy().bits(), bits);
  EXPECT_EQ(model->spec().unit_bits(), bits);
}

TEST(QuantizableModel, DensityCommitAndTotal) {
  Rng rng(5);
  VggConfig cfg;
  cfg.width_mult = 0.0625;
  auto model = build_vgg19(cfg, rng);
  Tensor x(Shape{2, 3, 32, 32});
  rng.fill_normal(x, 0.0f, 1.0f);
  model->forward(x);
  const std::vector<double> d = model->commit_epoch_densities();
  EXPECT_EQ(d.size(), static_cast<std::size_t>(kVgg19Units));
  for (double v : d) {
    EXPECT_GE(v, 0.0);
    EXPECT_LE(v, 1.0);
  }
  const double total = model->total_density();
  EXPECT_GT(total, 0.0);
  EXPECT_LE(total, 1.0);
}

TEST(QuantizableModel, ChannelPolicyMasksAndSpec) {
  Rng rng(6);
  VggConfig cfg;
  cfg.width_mult = 0.25;
  auto model = build_vgg19(cfg, rng);
  std::vector<std::int64_t> ch = model->channel_policy();
  ch[1] /= 2;
  model->apply_channel_policy(ch);
  EXPECT_EQ(model->unit(1).active_out_channels(), ch[1]);
  EXPECT_EQ(model->spec().layers[1].active_out, ch[1]);
  EXPECT_EQ(model->spec().layers[2].active_in, ch[1]);
}

TEST(QuantizableModel, SpecUnitMismatchThrows) {
  Rng rng(7);
  VggConfig cfg;
  cfg.width_mult = 0.0625;
  auto built = build_vgg19(cfg, rng);
  // Constructing with a wrong-sized spec must be rejected.
  ModelSpec bad = vgg19_spec(cfg);
  bad.layers.pop_back();
  auto net = std::make_unique<nn::Sequential>("x");
  std::vector<std::unique_ptr<QuantUnit>> units;
  EXPECT_THROW(QuantizableModel("bad", std::move(net), std::move(units), bad),
               std::invalid_argument);
  (void)built;
}

}  // namespace
}  // namespace adq::models
