// Registry-driven kernel conformance harness (the ggml test-backend-ops
// idea): every op in backend::kAllOps runs randomized cases on every
// registered backend against the portable reference — bit-exact for integer
// ops, NMSE-bounded for float ops. Cases are pure functions of (op, seed),
// so any failure reproduces from the one-line command the harness prints:
//
//   ADQ_BACKEND=<name> test_backend_ops --seed=<seed> --op=<op>
//
// Modes (flags are consumed before InitGoogleTest, so they compose with
// --gtest_filter):
//   --seed=N   run only case seed N (the repro path)
//   --op=NAME  restrict to one op (igemm, depthwise_int, bitpack, ...)
//   --fuzz=N   add N extra cases per op per backend from a random_device
//              base seed (printed, so the whole run is reproducible)
//   --perf     skip tests; time every op on every available backend and
//              write BENCH_bench_backend_ops.json (GMAC/s for MAC ops at
//              8/4/2 bits, GB/s for bandwidth ops)
//
// ADQ_BACKEND pins the backend under test; unset, all available backends
// are driven. Coverage lives in src/backend/conformance.cpp — this file is
// only the driver, so bench_micro and future tools share the same cases.
#include <cinttypes>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <random>
#include <stdexcept>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "backend/conformance.h"
#include "backend/registry.h"
#include "bench/common.h"

namespace {

using adq::backend::Backend;
using adq::backend::CaseResult;
using adq::backend::kAllOps;
using adq::backend::Op;
using adq::backend::op_from_name;
using adq::backend::op_name;
using adq::backend::repro_command;
using adq::backend::run_conformance_case;
using adq::backend::run_depthwise_case;

// The PR-gate floor: every op x backend pair sees at least this many
// randomized cases on every run (seeds 1..kGateCases, deterministic).
constexpr std::uint64_t kGateCases = 200;

struct Options {
  bool have_seed = false;
  std::uint64_t seed = 0;
  bool have_op = false;
  Op op = Op::kIgemm;
  std::uint64_t fuzz = 0;
  bool perf = false;
};
Options g_opts;

/// Backends the suite drives: the pinned one when ADQ_BACKEND / ADQ_SIMD is
/// set (so the printed repro command re-tests exactly the failing backend),
/// otherwise everything available on this host. Portable-vs-portable rides
/// along as a free determinism check on the case generator.
std::vector<const Backend*> backends_under_test() {
  if (std::getenv("ADQ_BACKEND") != nullptr ||
      std::getenv("ADQ_SIMD") != nullptr) {
    return {&adq::backend::active()};
  }
  return adq::backend::available_backends();
}

std::vector<Op> ops_under_test() {
  if (g_opts.have_op) return {g_opts.op};
  return std::vector<Op>(std::begin(kAllOps), std::end(kAllOps));
}

/// Runs one case and turns a failure into a gtest failure carrying the
/// generated-case description and the copy-paste repro line.
void expect_case_ok(Op op, std::uint64_t seed, const Backend& bk) {
  const CaseResult r = run_conformance_case(op, seed, bk);
  if (r.ok) return;
  ADD_FAILURE() << "backend '" << bk.name << "' diverges from portable on "
                << op_name(op) << " seed " << seed << "\n  case:   " << r.desc
                << "\n  detail: " << r.detail
                << "\n  repro:  " << repro_command(op, seed, bk);
}

TEST(BackendOps, ConformanceEveryOpEveryBackend) {
  const auto backends = backends_under_test();
  ASSERT_FALSE(backends.empty());
  for (const Backend* bk : backends) {
    for (Op op : ops_under_test()) {
      if (g_opts.have_seed) {
        expect_case_ok(op, g_opts.seed, *bk);
        continue;
      }
      for (std::uint64_t seed = 1; seed <= kGateCases; ++seed) {
        expect_case_ok(op, seed, *bk);
      }
    }
  }
}

// Directed integer-depthwise coverage: the int8/int4/int2 x stride 1/2
// matrix the mixed-precision models actually execute, with everything else
// (channels, kernel, padding, masked channels, batch) still randomized.
TEST(BackendOps, DepthwiseIntBitwidthStrideMatrix) {
  if (g_opts.have_seed || g_opts.have_op) {
    GTEST_SKIP() << "--seed/--op repro runs skip the directed matrix";
  }
  constexpr int kBits[] = {8, 4, 2};
  constexpr int kStrides[] = {1, 2};
  constexpr std::uint64_t kSeedsPerCell = 25;
  for (const Backend* bk : backends_under_test()) {
    for (int bits : kBits) {
      for (int stride : kStrides) {
        for (std::uint64_t seed = 1; seed <= kSeedsPerCell; ++seed) {
          const CaseResult r = run_depthwise_case(*bk, seed, bits, stride);
          if (r.ok) continue;
          ADD_FAILURE() << "backend '" << bk->name
                        << "' diverges from portable on depthwise_int (int"
                        << bits << ", stride " << stride << ") seed " << seed
                        << "\n  case:   " << r.desc
                        << "\n  detail: " << r.detail << "\n  repro:  "
                        << repro_command(Op::kDepthwiseInt, seed, *bk)
                        << "  (directed: bits=" << bits
                        << " stride=" << stride << ")";
        }
      }
    }
  }
}

// Fuzz mode: extra cases from a fresh base seed. The base is printed up
// front, and every failure prints its own absolute seed, so a CI hit is
// reproducible without rerunning the whole sweep.
TEST(BackendOps, FuzzRandomCases) {
  if (g_opts.fuzz == 0) {
    GTEST_SKIP() << "pass --fuzz=N to run randomized fuzz cases";
  }
  std::random_device rd;
  const std::uint64_t base =
      (static_cast<std::uint64_t>(rd()) << 32) ^ rd();
  std::printf("[fuzz] base seed %" PRIu64 " (%" PRIu64
              " cases per op per backend)\n",
              base, g_opts.fuzz);
  for (const Backend* bk : backends_under_test()) {
    for (Op op : ops_under_test()) {
      for (std::uint64_t i = 0; i < g_opts.fuzz; ++i) {
        // Mix the op index in so ops don't all replay the same seed list.
        const std::uint64_t seed =
            base + i * 1013904223ull + static_cast<std::uint64_t>(op);
        expect_case_ok(op, seed, *bk);
      }
    }
  }
}

// --- Registry selection -----------------------------------------------------

TEST(BackendRegistry, PortableIsAlwaysRegisteredFirstAndAvailable) {
  const auto& all = adq::backend::all_backends();
  ASSERT_FALSE(all.empty());
  EXPECT_STREQ(all[0]->name, "portable");
  EXPECT_TRUE(all[0]->available);
  EXPECT_EQ(adq::backend::find_backend("portable"), all[0]);
  // The roster is portable + the SIMD tiers, ascending preference.
  ASSERT_EQ(all.size(), 3u);
  EXPECT_STREQ(all[1]->name, "avx2");
  EXPECT_STREQ(all[2]->name, "vnni");
}

TEST(BackendRegistry, EveryBackendTableIsComplete) {
  for (const Backend* bk : adq::backend::all_backends()) {
    SCOPED_TRACE(bk->name);
    EXPECT_NE(bk->igemm, nullptr);
    EXPECT_NE(bk->igemm_w4, nullptr);
    EXPECT_NE(bk->igemm_w2, nullptr);
    EXPECT_NE(bk->im2col_u8, nullptr);
    EXPECT_NE(bk->im2col_f32, nullptr);
    EXPECT_NE(bk->depthwise_int, nullptr);
    EXPECT_NE(bk->depthwise_f32, nullptr);
    EXPECT_NE(bk->quantize_act, nullptr);
    EXPECT_NE(bk->fake_quant, nullptr);
    EXPECT_NE(bk->dequantize, nullptr);
    EXPECT_NE(bk->epilogue_row, nullptr);
    EXPECT_NE(bk->residual_add, nullptr);
    EXPECT_NE(bk->pack_codes, nullptr);
    EXPECT_NE(bk->unpack_codes, nullptr);
    EXPECT_NE(bk->act_pack, nullptr);
    EXPECT_NE(bk->act_unpack, nullptr);
  }
}

TEST(BackendRegistry, DefaultSelectionIsBestAvailable) {
  const auto avail = adq::backend::available_backends();
  ASSERT_FALSE(avail.empty());
  const Backend& chosen = adq::backend::resolve_backends_env(nullptr, nullptr);
  EXPECT_EQ(&chosen, avail.back());
}

TEST(BackendRegistry, ExplicitPinSelectsThatBackend) {
  const Backend& chosen =
      adq::backend::resolve_backends_env("portable", nullptr);
  EXPECT_STREQ(chosen.name, "portable");
}

TEST(BackendRegistry, AdqBackendTakesPrecedenceOverLegacySimd) {
  // Even a nonsense legacy value is ignored once ADQ_BACKEND is set.
  const Backend& chosen =
      adq::backend::resolve_backends_env("portable", "bogus");
  EXPECT_STREQ(chosen.name, "portable");
}

TEST(BackendRegistry, UnknownBackendFailsFastListingRoster) {
  try {
    adq::backend::resolve_backends_env("neon", nullptr);
    FAIL() << "expected std::runtime_error for an unknown ADQ_BACKEND";
  } catch (const std::runtime_error& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("neon"), std::string::npos) << msg;
    // The error must teach the fix: list every registered backend.
    EXPECT_NE(msg.find("portable"), std::string::npos) << msg;
    EXPECT_NE(msg.find("avx2"), std::string::npos) << msg;
    EXPECT_NE(msg.find("vnni"), std::string::npos) << msg;
  }
}

TEST(BackendRegistry, LegacySimdGenericAliasesPortable) {
  const Backend& chosen =
      adq::backend::resolve_backends_env(nullptr, "generic");
  EXPECT_STREQ(chosen.name, "portable");
}

TEST(BackendRegistry, LegacySimdRegistryNamesStillResolve) {
  // ADQ_SIMD=avx2 used to pick the AVX2 kernel cap; it now resolves through
  // the registry, so it must either select the avx2 backend or fail fast
  // when the host lacks it — never silently fall back.
  const Backend* avx2 = adq::backend::find_backend("avx2");
  ASSERT_NE(avx2, nullptr);
  if (avx2->available) {
    const Backend& chosen =
        adq::backend::resolve_backends_env(nullptr, "avx2");
    EXPECT_EQ(&chosen, avx2);
  } else {
    EXPECT_THROW(adq::backend::resolve_backends_env(nullptr, "avx2"),
                 std::runtime_error);
  }
}

TEST(BackendRegistry, UnknownLegacySimdValueFailsFast) {
  try {
    adq::backend::resolve_backends_env(nullptr, "sse9");
    FAIL() << "expected std::runtime_error for an unknown ADQ_SIMD";
  } catch (const std::runtime_error& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("sse9"), std::string::npos) << msg;
    EXPECT_NE(msg.find("ADQ_SIMD"), std::string::npos) << msg;
  }
}

TEST(BackendRegistry, UnavailableBackendPinFailsFast) {
  for (const Backend* bk : adq::backend::all_backends()) {
    if (bk->available) continue;
    EXPECT_THROW(adq::backend::resolve_backends_env(bk->name, nullptr),
                 std::runtime_error)
        << bk->name;
  }
}

TEST(BackendRegistry, OpNamesRoundTrip) {
  for (Op op : kAllOps) {
    Op parsed{};
    ASSERT_TRUE(op_from_name(op_name(op), &parsed)) << op_name(op);
    EXPECT_EQ(parsed, op);
  }
  Op parsed{};
  EXPECT_FALSE(op_from_name("sgemm", &parsed));
}

// --- Perf mode --------------------------------------------------------------

/// Times every op on every available backend and writes the per-backend
/// GMAC/s (resp. GB/s) table CI uploads. igemm is measured at each code
/// bit-width the mixed-precision engine feeds it.
int run_perf_mode() {
  adq::bench::JsonReport report("bench_backend_ops");
  std::printf("%-10s %-16s %10s %8s\n", "backend", "op", "value", "unit");
  for (const Backend* bk : backends_under_test()) {
    for (Op op : ops_under_test()) {
      std::vector<int> bit_list = {8};
      if (op == Op::kIgemm) bit_list = {8, 4, 2};
      // The packed kernels run at their native bit-width only; their metric
      // names carry the suffix so the int4-packed vs int8-unpacked GMAC/s
      // comparison reads straight out of the JSON.
      if (op == Op::kIgemmW4) bit_list = {4};
      if (op == Op::kIgemmW2) bit_list = {2};
      // Activation pack/unpack runs once per storage cell the activation
      // planner can assign (8 is a memcpy, 4/2 are the SIMD merges).
      if (op == Op::kActPack || op == Op::kActUnpack) bit_list = {8, 4, 2};
      for (int bits : bit_list) {
        const adq::backend::PerfSample s =
            adq::backend::measure_perf(op, *bk, bits);
        std::string metric = std::string(bk->name) + "_" + op_name(op);
        if (op == Op::kIgemm) metric += "_int" + std::to_string(bits);
        if (op == Op::kIgemmW4 || op == Op::kIgemmW2) {
          metric += "_int" + std::to_string(bits);
        }
        if (op == Op::kActPack || op == Op::kActUnpack) {
          metric += "_cell" + std::to_string(bits);
        }
        report.add(metric, s.value, s.unit);
        std::printf("%-10s %-16s %10.2f %8s\n", bk->name, metric.c_str(),
                    s.value, s.unit);
      }
    }
  }
  return 0;
}

/// Consumes the harness's own flags (everything else is left for gtest).
/// Returns false with a message on a malformed flag.
bool parse_args(int* argc, char** argv, Options* opts) {
  int kept = 1;
  for (int i = 1; i < *argc; ++i) {
    const char* arg = argv[i];
    if (std::strncmp(arg, "--seed=", 7) == 0) {
      opts->have_seed = true;
      opts->seed = std::strtoull(arg + 7, nullptr, 10);
    } else if (std::strncmp(arg, "--op=", 5) == 0) {
      if (!op_from_name(arg + 5, &opts->op)) {
        std::fprintf(stderr, "unknown --op '%s'; known ops:", arg + 5);
        for (Op op : kAllOps) std::fprintf(stderr, " %s", op_name(op));
        std::fprintf(stderr, "\n");
        return false;
      }
      opts->have_op = true;
    } else if (std::strncmp(arg, "--fuzz=", 7) == 0) {
      opts->fuzz = std::strtoull(arg + 7, nullptr, 10);
    } else if (std::strcmp(arg, "--perf") == 0) {
      opts->perf = true;
    } else {
      argv[kept++] = argv[i];
    }
  }
  *argc = kept;
  argv[kept] = nullptr;
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  if (!parse_args(&argc, argv, &g_opts)) return 2;
  if (g_opts.perf) return run_perf_mode();
  ::testing::InitGoogleTest(&argc, argv);
  return RUN_ALL_TESTS();
}
