// Unit tests for the Activation Density instrumentation: eqn-2 counting,
// epoch history, and the saturation detector Algorithm 1 keys on.
#include <gtest/gtest.h>

#include "ad/density_meter.h"
#include "ad/saturation.h"
#include "tensor/tensor.h"

namespace adq::ad {
namespace {

TEST(DensityMeter, PaperExampleEqn2) {
  // 512 neurons, 100 nonzero -> AD = 0.195...
  DensityMeter m("layer");
  m.observe_counts(100, 512);
  EXPECT_NEAR(m.current_density(), 100.0 / 512.0, 1e-12);
}

TEST(DensityMeter, ObserveCountsNonzeros) {
  DensityMeter m;
  Tensor x(Shape{4}, std::vector<float>{0.0f, 1.0f, 0.0f, 2.0f});
  m.observe(x);
  EXPECT_EQ(m.observed_nonzero(), 2);
  EXPECT_EQ(m.observed_total(), 4);
  EXPECT_DOUBLE_EQ(m.current_density(), 0.5);
}

TEST(DensityMeter, AccumulatesAcrossBatches) {
  DensityMeter m;
  Tensor ones(Shape{4}, 1.0f);
  Tensor zeros(Shape{4});
  m.observe(ones);
  m.observe(zeros);
  EXPECT_DOUBLE_EQ(m.current_density(), 0.5);
}

TEST(DensityMeter, CommitPushesHistoryAndResets) {
  DensityMeter m;
  m.observe_counts(3, 4);
  EXPECT_DOUBLE_EQ(m.commit_epoch(), 0.75);
  EXPECT_EQ(m.history().size(), 1u);
  EXPECT_EQ(m.observed_total(), 0);
  m.observe_counts(1, 4);
  m.commit_epoch();
  EXPECT_DOUBLE_EQ(m.history()[1], 0.25);
}

TEST(DensityMeter, LatestFallsBackToCurrent) {
  DensityMeter m;
  m.observe_counts(1, 2);
  EXPECT_DOUBLE_EQ(m.latest(), 0.5);
  m.commit_epoch();
  m.observe_counts(1, 4);
  EXPECT_DOUBLE_EQ(m.latest(), 0.5);  // last committed, not the running value
}

TEST(DensityMeter, InactiveIgnoresObservations) {
  DensityMeter m;
  m.set_active(false);
  m.observe_counts(5, 10);
  EXPECT_EQ(m.observed_total(), 0);
}

TEST(DensityMeter, ResetClearsEverything) {
  DensityMeter m;
  m.observe_counts(1, 2);
  m.commit_epoch();
  m.reset();
  EXPECT_TRUE(m.history().empty());
  EXPECT_EQ(m.observed_total(), 0);
}

TEST(DensityMeter, EmptyDensityIsZero) {
  DensityMeter m;
  EXPECT_DOUBLE_EQ(m.current_density(), 0.0);
}

TEST(Saturation, ShortHistoryNeverSaturated) {
  SaturationDetector d(5, 0.01);
  EXPECT_FALSE(d.is_saturated({0.5, 0.5, 0.5, 0.5}));
}

TEST(Saturation, FlatTailSaturates) {
  SaturationDetector d(3, 0.01);
  EXPECT_TRUE(d.is_saturated({0.9, 0.2, 0.500, 0.501, 0.499}));
}

TEST(Saturation, MovingTailDoesNot) {
  SaturationDetector d(3, 0.01);
  EXPECT_FALSE(d.is_saturated({0.5, 0.52, 0.55}));
}

TEST(Saturation, ToleranceBoundary) {
  SaturationDetector d(2, 0.05);
  EXPECT_TRUE(d.is_saturated({0.50, 0.54}));   // spread 0.04 < 0.05
  EXPECT_FALSE(d.is_saturated({0.50, 0.56}));  // spread 0.06 >= 0.05
}

TEST(Saturation, AllLayersRequired) {
  SaturationDetector d(2, 0.01);
  const std::vector<std::vector<double>> flat{{0.5, 0.5}, {0.3, 0.3}};
  const std::vector<std::vector<double>> mixed{{0.5, 0.5}, {0.3, 0.8}};
  EXPECT_TRUE(d.all_saturated(flat));
  EXPECT_FALSE(d.all_saturated(mixed));
}

TEST(Saturation, WindowLooksAtTailOnly) {
  SaturationDetector d(2, 0.01);
  // Early history is wild, tail is flat — saturated.
  EXPECT_TRUE(d.is_saturated({0.1, 0.9, 0.2, 0.7, 0.5, 0.5}));
}

}  // namespace
}  // namespace adq::ad
