// Tests for the core algorithm layer: the Trainer loop, the eqn-5 pruner
// update, and the Algorithm 1 controller semantics (iteration structure,
// frozen-layer exemption, fixed-point termination, record bookkeeping).
// Training runs use width-scaled models on tiny synthetic data so each test
// stays in the seconds range while exercising the full code path.
#include <gtest/gtest.h>

#include "core/ad_pruner.h"
#include "core/ad_quantizer.h"
#include "core/trainer.h"
#include "data/synthetic.h"
#include "models/vgg.h"

namespace adq::core {
namespace {

data::TrainTestSplit tiny_data(std::int64_t classes = 4, std::int64_t train = 96,
                               std::int64_t test = 48) {
  data::SyntheticSpec spec = data::synthetic_cifar10_spec();
  spec.num_classes = classes;
  spec.train_count = train;
  spec.test_count = test;
  spec.noise = 0.25f;
  return data::make_synthetic(spec);
}

std::unique_ptr<models::QuantizableModel> tiny_vgg(std::int64_t classes, Rng& rng) {
  models::VggConfig cfg;
  cfg.width_mult = 0.0625;
  cfg.num_classes = classes;
  return models::build_vgg19(cfg, rng);
}

TEST(Pruner, Eqn5Update) {
  // C = round(C * AD): 64 * 0.3 = 19.2 -> 19.
  const auto out = update_channels({64, 64, 64}, {0.3, 1.0, 0.01},
                                   {false, false, false});
  EXPECT_EQ(out[0], 19);
  EXPECT_EQ(out[1], 64);
  EXPECT_EQ(out[2], 1);  // floored at min_channels
}

TEST(Pruner, FrozenUnitsUntouched) {
  const auto out = update_channels({64, 64}, {0.1, 0.1}, {true, false});
  EXPECT_EQ(out[0], 64);
  EXPECT_EQ(out[1], 6);
}

TEST(Pruner, MinChannelsConfigurable) {
  PrunerConfig cfg;
  cfg.min_channels = 8;
  const auto out = update_channels({64}, {0.01}, {false}, cfg);
  EXPECT_EQ(out[0], 8);
}

TEST(Pruner, SizeMismatchThrows) {
  EXPECT_THROW(update_channels({64}, {0.5, 0.5}, {false}), std::invalid_argument);
}

TEST(Trainer, LossDecreasesOnLearnableTask) {
  Rng rng(21);
  const data::TrainTestSplit split = tiny_data();
  auto model = tiny_vgg(4, rng);
  TrainerConfig cfg;
  cfg.batch_size = 16;
  cfg.lr = 1e-3f;
  Trainer trainer(*model, split.train, split.test, cfg);
  const EpochStats first = trainer.run_epoch();
  EpochStats last{};
  for (int e = 0; e < 3; ++e) last = trainer.run_epoch();
  EXPECT_LT(last.train_loss, first.train_loss);
  EXPECT_GT(last.train_accuracy, 0.5);  // 4 classes, chance = 0.25
}

TEST(Trainer, EpochCommitsDensities) {
  Rng rng(22);
  const data::TrainTestSplit split = tiny_data();
  auto model = tiny_vgg(4, rng);
  Trainer trainer(*model, split.train, split.test);
  const EpochStats stats = trainer.run_epoch();
  EXPECT_EQ(stats.densities.size(), static_cast<std::size_t>(model->unit_count()));
  for (double d : stats.densities) {
    EXPECT_GE(d, 0.0);
    EXPECT_LE(d, 1.0);
  }
  // History has exactly one committed epoch per unit.
  for (const auto& h : model->density_histories()) EXPECT_EQ(h.size(), 1u);
}

TEST(Trainer, EvaluateRestoresTrainingState) {
  Rng rng(23);
  const data::TrainTestSplit split = tiny_data();
  auto model = tiny_vgg(4, rng);
  Trainer trainer(*model, split.train, split.test);
  trainer.run_epoch();
  const double acc = trainer.evaluate();
  EXPECT_GE(acc, 0.0);
  EXPECT_LE(acc, 1.0);
  // Meters must be active again after evaluate() so training keeps counting.
  EXPECT_TRUE(model->unit(1).meter.active());
  // And eval must not have contaminated the fresh epoch accumulators.
  EXPECT_EQ(model->unit(1).meter.observed_total(), 0);
}

TEST(Controller, RunsIterationsAndQuantizes) {
  Rng rng(24);
  const data::TrainTestSplit split = tiny_data();
  auto model = tiny_vgg(4, rng);
  TrainerConfig tcfg;
  tcfg.batch_size = 16;
  Trainer trainer(*model, split.train, split.test, tcfg);
  AdqConfig cfg;
  cfg.max_iterations = 3;
  cfg.min_epochs_per_iter = 2;
  cfg.max_epochs_per_iter = 4;
  cfg.detector = ad::SaturationDetector(2, 0.05);
  AdQuantizationController controller(*model, trainer, cfg);
  const RunResult result = controller.run();

  ASSERT_GE(result.iterations.size(), 2u);
  // Iteration 1 is the 16-bit model.
  for (int b : result.iterations[0].bits.bits()) EXPECT_EQ(b, 16);
  // After the first eqn-3 update, at least one non-frozen layer dropped.
  const auto& bits2 = result.iterations[1].bits.bits();
  bool any_lower = false;
  for (std::size_t i = 1; i + 1 < bits2.size(); ++i) any_lower |= bits2[i] < 16;
  EXPECT_TRUE(any_lower);
  // Frozen first conv and final FC stay at 16 bits in every iteration.
  for (const IterationResult& ir : result.iterations) {
    EXPECT_EQ(ir.bits.at(0), 16);
    EXPECT_EQ(ir.bits.at(16), 16);
  }
  // Energy efficiency must exceed 1 once quantized.
  EXPECT_GT(result.iterations.back().energy_efficiency, 1.0);
  // Trajectories are epoch-aligned.
  const std::size_t epochs = result.test_accuracy_per_epoch.size();
  for (const auto& tr : result.ad_per_unit) EXPECT_EQ(tr.size(), epochs);
  EXPECT_EQ(result.train_loss_per_epoch.size(), epochs);
}

TEST(Controller, TrainingComplexityBelowBaseline) {
  Rng rng(25);
  const data::TrainTestSplit split = tiny_data();
  auto model = tiny_vgg(4, rng);
  Trainer trainer(*model, split.train, split.test);
  AdqConfig cfg;
  cfg.max_iterations = 3;
  cfg.min_epochs_per_iter = 2;
  cfg.max_epochs_per_iter = 3;
  cfg.detector = ad::SaturationDetector(2, 0.05);
  AdQuantizationController controller(*model, trainer, cfg);
  const RunResult result = controller.run();
  // Quantized iterations cost less than 16-bit epochs, so the eqn-4 sum
  // normalised by total epochs must be < 1.
  EXPECT_LT(result.training_complexity_vs_baseline, 1.0);
  EXPECT_GT(result.training_complexity_vs_baseline, 0.0);
}

TEST(Controller, PruningShrinksChannels) {
  Rng rng(26);
  const data::TrainTestSplit split = tiny_data();
  auto model = tiny_vgg(4, rng);
  Trainer trainer(*model, split.train, split.test);
  AdqConfig cfg;
  cfg.max_iterations = 2;
  cfg.min_epochs_per_iter = 2;
  cfg.max_epochs_per_iter = 3;
  cfg.detector = ad::SaturationDetector(2, 0.05);
  cfg.prune = true;
  AdQuantizationController controller(*model, trainer, cfg);
  const RunResult result = controller.run();
  ASSERT_GE(result.iterations.size(), 2u);
  const auto& ch1 = result.iterations[0].channels;
  const auto& ch2 = result.iterations[1].channels;
  bool any_pruned = false;
  for (std::size_t i = 0; i + 1 < ch1.size(); ++i) any_pruned |= ch2[i] < ch1[i];
  EXPECT_TRUE(any_pruned);
  // The model still runs forward after pruning.
  Tensor x(Shape{2, 3, 32, 32});
  Rng(1).fill_normal(x, 0.0f, 1.0f);
  EXPECT_EQ(model->forward(x).shape(), Shape({2, 4}));
}

TEST(Controller, HardwareGridSnapsBits) {
  Rng rng(27);
  const data::TrainTestSplit split = tiny_data();
  auto model = tiny_vgg(4, rng);
  Trainer trainer(*model, split.train, split.test);
  AdqConfig cfg;
  cfg.max_iterations = 2;
  cfg.min_epochs_per_iter = 2;
  cfg.max_epochs_per_iter = 3;
  cfg.detector = ad::SaturationDetector(2, 0.05);
  cfg.hardware_grid = true;
  AdQuantizationController controller(*model, trainer, cfg);
  controller.run();
  for (std::size_t i = 0; i < static_cast<std::size_t>(model->unit_count()); ++i) {
    const int b = model->bit_policy().at(static_cast<int>(i));
    EXPECT_TRUE(b == 2 || b == 4 || b == 8 || b == 16) << "unit " << i << " bits " << b;
  }
}

TEST(Controller, FinalEpochsExtendLastIteration) {
  Rng rng(28);
  const data::TrainTestSplit split = tiny_data();
  auto model = tiny_vgg(4, rng);
  Trainer trainer(*model, split.train, split.test);
  AdqConfig cfg;
  cfg.max_iterations = 1;
  cfg.min_epochs_per_iter = 2;
  cfg.max_epochs_per_iter = 2;
  cfg.final_epochs = 2;
  cfg.detector = ad::SaturationDetector(2, 0.05);
  AdQuantizationController controller(*model, trainer, cfg);
  const RunResult result = controller.run();
  EXPECT_EQ(result.iterations.back().epochs, 4);  // 2 trained + 2 final
  EXPECT_EQ(result.test_accuracy_per_epoch.size(), 4u);
}

}  // namespace
}  // namespace adq::core
