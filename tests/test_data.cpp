// Tests for the data substrate: dataset/batching mechanics and the
// synthetic CIFAR/TinyImagenet stand-ins (determinism, balance, shapes).
#include <gtest/gtest.h>

#include <fstream>
#include <set>

#include "data/cifar.h"
#include "data/dataset.h"
#include "data/synthetic.h"
#include "tensor/ops.h"

namespace adq::data {
namespace {

Dataset tiny_dataset(std::int64_t n = 10) {
  Tensor images(Shape{n, 1, 2, 2});
  std::vector<std::int64_t> labels(static_cast<std::size_t>(n));
  for (std::int64_t i = 0; i < n; ++i) {
    labels[static_cast<std::size_t>(i)] = i % 2;
    for (std::int64_t j = 0; j < 4; ++j) images[i * 4 + j] = static_cast<float>(i);
  }
  return Dataset(std::move(images), std::move(labels));
}

TEST(Dataset, GatherCopiesSamplesAndLabels) {
  const Dataset ds = tiny_dataset();
  const Batch b = ds.gather({3, 7});
  EXPECT_EQ(b.images.shape(), Shape({2, 1, 2, 2}));
  EXPECT_EQ(b.images[0], 3.0f);
  EXPECT_EQ(b.images[4], 7.0f);
  EXPECT_EQ(b.labels[0], 1);
  EXPECT_EQ(b.labels[1], 1);
}

TEST(Dataset, GatherOutOfRangeThrows) {
  const Dataset ds = tiny_dataset();
  EXPECT_THROW(ds.gather({100}), std::out_of_range);
}

TEST(Dataset, StandardizeZeroMeanUnitVar) {
  Dataset ds = tiny_dataset(100);
  ds.standardize();
  EXPECT_NEAR(mean(ds.images()), 0.0, 1e-4);
  double s2 = 0.0;
  for (std::int64_t i = 0; i < ds.images().numel(); ++i) {
    s2 += static_cast<double>(ds.images()[i]) * ds.images()[i];
  }
  EXPECT_NEAR(s2 / static_cast<double>(ds.images().numel()), 1.0, 1e-3);
}

TEST(Dataset, MismatchedLabelsThrow) {
  Tensor images(Shape{3, 1, 2, 2});
  EXPECT_THROW(Dataset(std::move(images), {0, 1}), std::invalid_argument);
}

TEST(BatchLoader, CoversEpochExactlyOnce) {
  const Dataset ds = tiny_dataset(10);
  Rng rng(1);
  BatchLoader loader(ds, 3, rng);
  Batch b;
  std::multiset<float> seen;
  std::int64_t batches = 0;
  while (loader.next(b)) {
    ++batches;
    for (std::int64_t i = 0; i < b.images.shape().dim(0); ++i) {
      seen.insert(b.images[i * 4]);
    }
  }
  EXPECT_EQ(batches, 4);  // 3+3+3+1
  EXPECT_EQ(loader.batches_per_epoch(), 4);
  EXPECT_EQ(seen.size(), 10u);
  for (std::int64_t i = 0; i < 10; ++i) {
    EXPECT_EQ(seen.count(static_cast<float>(i)), 1u);
  }
}

TEST(BatchLoader, ShuffleDeterministicFromSeed) {
  const Dataset ds = tiny_dataset(16);
  Rng r1(9), r2(9);
  BatchLoader a(ds, 4, r1), b(ds, 4, r2);
  Batch ba, bb;
  while (a.next(ba)) {
    ASSERT_TRUE(b.next(bb));
    EXPECT_TRUE(allclose(ba.images, bb.images, 0.0f));
  }
}

TEST(BatchLoader, NoShuffleKeepsOrder) {
  const Dataset ds = tiny_dataset(6);
  Rng rng(1);
  BatchLoader loader(ds, 2, rng, /*shuffle=*/false);
  Batch b;
  ASSERT_TRUE(loader.next(b));
  EXPECT_EQ(b.images[0], 0.0f);
  EXPECT_EQ(b.images[4], 1.0f);
}

TEST(Synthetic, ShapesAndDeterminism) {
  SyntheticSpec spec = synthetic_cifar10_spec();
  spec.train_count = 40;
  spec.test_count = 20;
  const TrainTestSplit a = make_synthetic(spec);
  const TrainTestSplit b = make_synthetic(spec);
  EXPECT_EQ(a.train.size(), 40);
  EXPECT_EQ(a.test.size(), 20);
  EXPECT_EQ(a.train.images().shape(), Shape({40, 3, 32, 32}));
  EXPECT_TRUE(allclose(a.train.images(), b.train.images(), 0.0f));
  EXPECT_EQ(a.train.labels(), b.train.labels());
}

TEST(Synthetic, BalancedClasses) {
  SyntheticSpec spec = synthetic_cifar10_spec();
  spec.train_count = 100;
  spec.test_count = 10;
  const TrainTestSplit split = make_synthetic(spec);
  std::vector<int> counts(10, 0);
  for (std::int64_t label : split.train.labels()) counts[static_cast<std::size_t>(label)]++;
  for (int c : counts) EXPECT_EQ(c, 10);
}

TEST(Synthetic, PresetSpecs) {
  EXPECT_EQ(synthetic_cifar10_spec().num_classes, 10);
  EXPECT_EQ(synthetic_cifar100_spec().num_classes, 100);
  EXPECT_EQ(synthetic_tinyimagenet_spec().num_classes, 200);
  EXPECT_EQ(synthetic_tinyimagenet_spec().size, 64);
}

TEST(Synthetic, ClassesAreSeparable) {
  // Nearest-prototype classification on noiseless means should beat chance
  // by a wide margin: same-class samples must be closer than cross-class.
  SyntheticSpec spec = synthetic_cifar10_spec();
  spec.train_count = 100;
  spec.test_count = 10;
  const TrainTestSplit split = make_synthetic(spec);
  const auto& imgs = split.train.images();
  const std::int64_t d = 3 * 32 * 32;
  // Class means.
  std::vector<std::vector<double>> means(10, std::vector<double>(static_cast<std::size_t>(d), 0.0));
  std::vector<int> counts(10, 0);
  for (std::int64_t i = 0; i < 100; ++i) {
    const std::int64_t c = split.train.labels()[static_cast<std::size_t>(i)];
    counts[static_cast<std::size_t>(c)]++;
    for (std::int64_t j = 0; j < d; ++j) {
      means[static_cast<std::size_t>(c)][static_cast<std::size_t>(j)] += imgs[i * d + j];
    }
  }
  for (std::size_t c = 0; c < 10; ++c) {
    for (auto& v : means[c]) v /= counts[c];
  }
  // Nearest-mean classification accuracy over the training samples.
  int correct = 0;
  for (std::int64_t i = 0; i < 100; ++i) {
    double best = 1e300;
    int best_c = -1;
    for (int c = 0; c < 10; ++c) {
      double dist = 0.0;
      for (std::int64_t j = 0; j < d; ++j) {
        const double diff = imgs[i * d + j] - means[static_cast<std::size_t>(c)][static_cast<std::size_t>(j)];
        dist += diff * diff;
      }
      if (dist < best) {
        best = dist;
        best_c = c;
      }
    }
    if (best_c == split.train.labels()[static_cast<std::size_t>(i)]) ++correct;
  }
  EXPECT_GE(correct, 50);  // well above the 10% chance level
}

TEST(Cifar, MissingDirectoryReturnsNullopt) {
  EXPECT_FALSE(load_cifar10("/nonexistent/path").has_value());
}

TEST(Cifar, MalformedFileThrows) {
  const std::string path = ::testing::TempDir() + "/bad_cifar.bin";
  {
    std::ofstream out(path, std::ios::binary);
    out << "not a cifar file";
  }
  EXPECT_THROW(load_cifar10_file(path), std::runtime_error);
}

TEST(Cifar, ParsesWellFormedRecords) {
  // Two synthetic records in the 1+3072-byte format.
  const std::string path = ::testing::TempDir() + "/ok_cifar.bin";
  {
    std::ofstream out(path, std::ios::binary);
    for (int rec = 0; rec < 2; ++rec) {
      out.put(static_cast<char>(rec + 1));  // label
      for (int i = 0; i < 3072; ++i) out.put(static_cast<char>(rec == 0 ? 0 : 255));
    }
  }
  const Dataset ds = load_cifar10_file(path);
  EXPECT_EQ(ds.size(), 2);
  EXPECT_EQ(ds.labels()[0], 1);
  EXPECT_EQ(ds.labels()[1], 2);
  EXPECT_FLOAT_EQ(ds.images()[0], 0.0f);
  EXPECT_FLOAT_EQ(ds.images()[3072], 1.0f);  // 255/255
}

}  // namespace
}  // namespace adq::data
