// Cross-module property tests: invariants that tie the quantizer, the
// energy models, the PIM mapper, and Algorithm 1's update rules together.
// These are randomized sweeps (parameterized over seeds) rather than
// example-based tests.
#include <gtest/gtest.h>

#include <algorithm>

#include "energy/analytical.h"
#include "models/resnet.h"
#include "models/vgg.h"
#include "pim/mapper.h"
#include "quant/bitwidth.h"
#include "quant/quantizer.h"
#include "tensor/ops.h"
#include "tensor/rng.h"

namespace adq {
namespace {

class SeededProperty : public ::testing::TestWithParam<int> {};

TEST_P(SeededProperty, FakeQuantizePreservesOrdering) {
  // Quantization is a monotone non-decreasing map: x <= y => q(x) <= q(y).
  Rng rng(static_cast<std::uint64_t>(GetParam()));
  Tensor x(Shape{512});
  rng.fill_normal(x, 0.0f, 2.0f);
  const int bits = static_cast<int>(rng.uniform_int(1, 8));
  const Tensor q = quant::fake_quantize(x, bits);
  std::vector<std::size_t> order(512);
  for (std::size_t i = 0; i < 512; ++i) order[i] = i;
  std::sort(order.begin(), order.end(),
            [&](std::size_t a, std::size_t b) { return x[static_cast<std::int64_t>(a)] < x[static_cast<std::int64_t>(b)]; });
  for (std::size_t i = 1; i < 512; ++i) {
    EXPECT_LE(q[static_cast<std::int64_t>(order[i - 1])],
              q[static_cast<std::int64_t>(order[i])]);
  }
}

TEST_P(SeededProperty, FakeQuantizeMoreBitsNeverWorse) {
  // Mean squared quantization error is non-increasing in bit-width.
  Rng rng(1000 + static_cast<std::uint64_t>(GetParam()));
  Tensor x(Shape{1024});
  rng.fill_normal(x, 0.0f, 1.0f);
  double prev_mse = 1e300;
  for (int bits : {1, 2, 4, 8, 12}) {
    const Tensor q = quant::fake_quantize(x, bits);
    double mse = 0.0;
    for (std::int64_t i = 0; i < x.numel(); ++i) {
      const double d = x[i] - q[i];
      mse += d * d;
    }
    EXPECT_LE(mse, prev_mse + 1e-9) << "bits=" << bits;
    prev_mse = mse;
  }
}

TEST_P(SeededProperty, UpdateBitsMonotoneInDensity) {
  Rng rng(2000 + static_cast<std::uint64_t>(GetParam()));
  const int bits = static_cast<int>(rng.uniform_int(1, 16));
  int prev = 0;
  for (double d = 0.0; d <= 1.0; d += 0.05) {
    const int k = quant::update_bits(bits, d);
    EXPECT_GE(k, prev);
    EXPECT_GE(k, 1);
    EXPECT_LE(k, bits);
    prev = k;
  }
}

TEST_P(SeededProperty, RandomBitPoliciesNeverBeatTheoreticalBounds) {
  // For any random mixed-precision assignment on VGG19:
  //  - analytical efficiency vs 16-bit baseline is >= 1 (all bits <= 16)
  //  - PIM reduction is >= 1 after hardware rounding
  //  - analytical efficiency is bounded by the best single-layer ratio.
  Rng rng(3000 + static_cast<std::uint64_t>(GetParam()));
  models::ModelSpec spec = models::vgg19_spec(models::VggConfig{});
  const models::ModelSpec baseline = spec.with_uniform_bits(16);
  std::vector<int> bits(17);
  for (auto& b : bits) b = static_cast<int>(rng.uniform_int(1, 16));
  spec.apply_bits(quant::BitWidthPolicy(bits));

  const double eff = energy::energy_efficiency(spec, baseline);
  EXPECT_GE(eff, 1.0);
  const double pim_red = pim::pim_energy_reduction(spec, baseline);
  EXPECT_GE(pim_red, 1.0 - 1e-12);

  const double best_single =
      energy::mem_access_energy_pj(16) / energy::mem_access_energy_pj(1) +
      energy::mac_energy_pj(16) / energy::mac_energy_pj(1);
  EXPECT_LE(eff, best_single);  // crude but sound upper bound
}

TEST_P(SeededProperty, HardwareRoundingNeverDecreasesEnergy) {
  // Snapping bits up to {2,4,8,16} can only increase analytical energy.
  Rng rng(4000 + static_cast<std::uint64_t>(GetParam()));
  models::ModelSpec spec = models::resnet18_spec(models::ResNetConfig{});
  std::vector<int> bits(static_cast<std::size_t>(models::kResNet18Units));
  for (auto& b : bits) b = static_cast<int>(rng.uniform_int(1, 16));
  spec.apply_bits(quant::BitWidthPolicy(bits));
  const double free_pj = energy::analytical_energy(spec).total_pj;
  const double hw_pj = energy::analytical_energy(spec.hardware_rounded()).total_pj;
  EXPECT_GE(hw_pj, free_pj - 1e-6);
}

TEST_P(SeededProperty, PruningMonotoneInChannels) {
  // Removing channels never increases energy, on either model.
  Rng rng(5000 + static_cast<std::uint64_t>(GetParam()));
  models::ModelSpec spec = models::vgg19_spec(models::VggConfig{});
  std::vector<std::int64_t> full;
  for (int i : spec.unit_layers()) full.push_back(spec.layers[static_cast<std::size_t>(i)].out_channels);
  std::vector<std::int64_t> pruned = full;
  for (std::size_t i = 0; i + 1 < pruned.size(); ++i) {
    pruned[i] = std::max<std::int64_t>(1, rng.uniform_int(1, full[i]));
  }
  models::ModelSpec pruned_spec = spec;
  pruned_spec.apply_channels(pruned);
  EXPECT_LE(energy::analytical_energy(pruned_spec).total_pj,
            energy::analytical_energy(spec).total_pj + 1e-6);
  EXPECT_LE(pim::pim_energy(pruned_spec).total_uj,
            pim::pim_energy(spec).total_uj + 1e-12);
}

TEST_P(SeededProperty, BitPolicyUpdateIsContractive) {
  // Iterating eqn 3 with any fixed densities in [0,1] converges: bits are
  // non-increasing and reach a fixed point within a bounded number of steps.
  Rng rng(6000 + static_cast<std::uint64_t>(GetParam()));
  quant::BitWidthPolicy p = quant::BitWidthPolicy::uniform(10, 16);
  std::vector<double> densities(10);
  for (auto& d : densities) d = rng.uniform(0.0f, 1.0f);
  const std::vector<bool> frozen(10, false);
  for (int iter = 0; iter < 64; ++iter) {
    const quant::BitWidthPolicy next = p.updated(densities, frozen);
    for (int l = 0; l < p.size(); ++l) EXPECT_LE(next.at(l), p.at(l));
    if (next == p) return;  // fixed point reached
    p = next;
  }
  // round(k * d) with d <= 1 must fix within 64 iterations from 16 bits.
  FAIL() << "eqn-3 iteration did not converge";
}

INSTANTIATE_TEST_SUITE_P(Seeds, SeededProperty, ::testing::Range(0, 8));

TEST(Property, EnergyAdditiveOverLayers) {
  const models::ModelSpec spec = models::vgg19_spec(models::VggConfig{});
  const energy::EnergyReport r = energy::analytical_energy(spec);
  double sum = 0.0;
  for (const auto& l : r.layers) sum += l.total_pj();
  EXPECT_NEAR(sum, r.total_pj, r.total_pj * 1e-12);
}

TEST(Property, SpecAndBuilderAgreeOnShapes) {
  // The trainable model and the shape-only spec must describe the same
  // network: forward shapes through the built net must match the spec's
  // out_size/out_channels at every conv unit.
  Rng rng(7);
  models::VggConfig cfg;
  cfg.width_mult = 0.0625;
  auto model = models::build_vgg19(cfg, rng);
  const models::ModelSpec spec = models::vgg19_spec(cfg);
  for (int u = 0; u < model->unit_count(); ++u) {
    const models::QuantUnit& unit = model->unit(u);
    const models::LayerSpec& l =
        spec.layers[static_cast<std::size_t>(spec.unit_layers()[static_cast<std::size_t>(u)])];
    if (unit.conv != nullptr) {
      EXPECT_EQ(unit.conv->out_channels(), l.out_channels) << l.name;
      EXPECT_EQ(unit.conv->in_channels(), l.in_channels) << l.name;
    } else {
      EXPECT_EQ(unit.linear->in_features(), l.in_channels) << l.name;
      EXPECT_EQ(unit.linear->out_features(), l.out_channels) << l.name;
    }
  }
}

TEST(Property, ResNetSpecAndBuilderAgreeOnShapes) {
  Rng rng(8);
  models::ResNetConfig cfg;
  cfg.width_mult = 0.125;
  auto model = models::build_resnet18(cfg, rng);
  const models::ModelSpec spec = resnet18_spec(cfg);
  for (int u = 0; u < model->unit_count(); ++u) {
    const models::QuantUnit& unit = model->unit(u);
    const models::LayerSpec& l =
        spec.layers[static_cast<std::size_t>(spec.unit_layers()[static_cast<std::size_t>(u)])];
    if (unit.conv != nullptr) {
      EXPECT_EQ(unit.conv->out_channels(), l.out_channels) << l.name;
    }
  }
}

}  // namespace
}  // namespace adq
