// Tests for the extension features: layer removal (Table II iteration 2a
// mechanics) and parameter checkpointing.
#include <gtest/gtest.h>

#include <cmath>
#include <fstream>

#include "pim/accelerator.h"

#include "core/trainer.h"
#include "data/synthetic.h"
#include "energy/analytical.h"
#include "models/vgg.h"
#include "nn/init.h"
#include "nn/serialize.h"
#include "tensor/ops.h"

namespace adq {
namespace {

TEST(LayerRemoval, BypassedConvIsIdentity) {
  Rng rng(1);
  nn::Conv2d conv(4, 4, 3, 1, 1, false);
  nn::init_conv(conv, rng);
  conv.set_bypassed(true);
  Tensor x(Shape{2, 4, 5, 5});
  rng.fill_normal(x, 0.0f, 1.0f);
  EXPECT_TRUE(allclose(conv.forward(x), x, 0.0f));
  Tensor g(x.shape(), 1.0f);
  EXPECT_TRUE(allclose(conv.backward(g), g, 0.0f));
  conv.set_bypassed(false);
  EXPECT_FALSE(allclose(conv.forward(x), x, 1e-3f));
}

TEST(LayerRemoval, ShapeChangingConvCannotBeBypassed) {
  nn::Conv2d widen(2, 4, 3, 1, 1, false);
  EXPECT_THROW(widen.set_bypassed(true), std::invalid_argument);
  nn::Conv2d strided(4, 4, 3, 2, 1, false);
  EXPECT_THROW(strided.set_bypassed(true), std::invalid_argument);
}

TEST(LayerRemoval, BypassedBatchNormIsIdentity) {
  nn::BatchNorm2d bn(3);
  bn.set_bypassed(true);
  Rng rng(2);
  Tensor x(Shape{2, 3, 2, 2});
  rng.fill_normal(x, 5.0f, 2.0f);
  EXPECT_TRUE(allclose(bn.forward(x), x, 0.0f));
}

TEST(LayerRemoval, ModelRemoveUnitDropsEnergyAndKeepsForward) {
  Rng rng(3);
  models::VggConfig cfg;
  cfg.width_mult = 0.0625;
  auto model = models::build_vgg19(cfg, rng);
  const double before = energy::analytical_energy(model->spec()).total_pj;

  model->remove_unit(15);  // conv16: 512->512, stride 1 (the 2a layer)
  const double after = energy::analytical_energy(model->spec()).total_pj;
  EXPECT_LT(after, before);
  EXPECT_TRUE(model->unit(15).frozen);
  EXPECT_TRUE(model->unit(15).removed);

  Tensor x(Shape{2, 3, 32, 32});
  rng.fill_normal(x, 0.0f, 1.0f);
  EXPECT_EQ(model->forward(x).shape(), Shape({2, 10}));
}

TEST(LayerRemoval, OnlyPlainConvUnitsRemovable) {
  Rng rng(4);
  models::VggConfig cfg;
  cfg.width_mult = 0.0625;
  auto model = models::build_vgg19(cfg, rng);
  EXPECT_THROW(model->remove_unit(16), std::invalid_argument);  // the FC
  EXPECT_THROW(model->remove_unit(2), std::invalid_argument);   // 16ch -> 32ch
}

TEST(LayerRemoval, RemovedModelStillTrains) {
  Rng rng(5);
  models::VggConfig cfg;
  cfg.width_mult = 0.0625;
  cfg.num_classes = 4;
  auto model = models::build_vgg19(cfg, rng);
  model->remove_unit(15);

  data::SyntheticSpec dspec = data::synthetic_cifar10_spec();
  dspec.num_classes = 4;
  dspec.train_count = 64;
  dspec.test_count = 32;
  const data::TrainTestSplit split = data::make_synthetic(dspec);
  core::Trainer trainer(*model, split.train, split.test);
  const core::EpochStats first = trainer.run_epoch();
  core::EpochStats last{};
  for (int e = 0; e < 2; ++e) last = trainer.run_epoch();
  EXPECT_LT(last.train_loss, first.train_loss);
}

TEST(Checkpoint, RoundTripRestoresExactValues) {
  Rng rng(6);
  models::VggConfig cfg;
  cfg.width_mult = 0.0625;
  auto model = models::build_vgg19(cfg, rng);
  const std::string path = ::testing::TempDir() + "/ckpt_roundtrip.adq";
  const std::vector<nn::Parameter*> params = model->parameters();
  save_parameters(params, path);

  // Scramble, then restore.
  Rng scramble(7);
  for (nn::Parameter* p : params) scramble.fill_normal(p->value, 0.0f, 1.0f);
  load_parameters(params, path);

  Rng check(6);
  auto reference = models::build_vgg19(cfg, check);
  const std::vector<nn::Parameter*> ref_params = reference->parameters();
  ASSERT_EQ(params.size(), ref_params.size());
  for (std::size_t i = 0; i < params.size(); ++i) {
    EXPECT_TRUE(allclose(params[i]->value, ref_params[i]->value, 0.0f))
        << params[i]->name;
  }
}

TEST(Checkpoint, PredictionsSurviveRoundTrip) {
  Rng rng(8);
  models::VggConfig cfg;
  cfg.width_mult = 0.0625;
  auto model = models::build_vgg19(cfg, rng);
  model->set_training(false);
  Tensor x(Shape{2, 3, 32, 32});
  rng.fill_normal(x, 0.0f, 1.0f);
  const Tensor before = model->forward(x);

  const std::string path = ::testing::TempDir() + "/ckpt_pred.adq";
  save_parameters(model->parameters(), path);
  Rng scramble(9);
  for (nn::Parameter* p : model->parameters()) scramble.fill_normal(p->value, 0.0f, 1.0f);
  load_parameters(model->parameters(), path);
  const Tensor after = model->forward(x);
  EXPECT_TRUE(allclose(before, after, 1e-6f));
}

TEST(Checkpoint, ShapeMismatchRejected) {
  Rng rng(10);
  models::VggConfig small;
  small.width_mult = 0.0625;
  auto a = models::build_vgg19(small, rng);
  const std::string path = ::testing::TempDir() + "/ckpt_shape.adq";
  save_parameters(a->parameters(), path);

  models::VggConfig bigger = small;
  bigger.width_mult = 0.125;
  auto b = models::build_vgg19(bigger, rng);
  EXPECT_THROW(load_parameters(b->parameters(), path), std::runtime_error);
}

TEST(GradientQuantization, QuantizedGradsStillLearn) {
  Rng rng(12);
  models::VggConfig cfg;
  cfg.width_mult = 0.0625;
  cfg.num_classes = 4;
  auto model = models::build_vgg19(cfg, rng);

  data::SyntheticSpec dspec = data::synthetic_cifar10_spec();
  dspec.num_classes = 4;
  dspec.train_count = 96;
  dspec.test_count = 48;
  const data::TrainTestSplit split = data::make_synthetic(dspec);
  core::TrainerConfig tcfg;
  tcfg.grad_bits = 8;  // QSGD-style 8-bit gradient transmission
  core::Trainer trainer(*model, split.train, split.test, tcfg);
  const core::EpochStats first = trainer.run_epoch();
  core::EpochStats last{};
  for (int e = 0; e < 3; ++e) last = trainer.run_epoch();
  EXPECT_LT(last.train_loss, first.train_loss);
  EXPECT_GT(last.train_accuracy, 0.5);
}

TEST(GradientQuantization, OneBitGradsDegradeButRun) {
  Rng rng(13);
  models::VggConfig cfg;
  cfg.width_mult = 0.0625;
  cfg.num_classes = 4;
  auto model = models::build_vgg19(cfg, rng);
  data::SyntheticSpec dspec = data::synthetic_cifar10_spec();
  dspec.num_classes = 4;
  dspec.train_count = 32;
  dspec.test_count = 16;
  const data::TrainTestSplit split = data::make_synthetic(dspec);
  core::TrainerConfig tcfg;
  tcfg.grad_bits = 1;
  core::Trainer trainer(*model, split.train, split.test, tcfg);
  const core::EpochStats stats = trainer.run_epoch();  // must not blow up
  EXPECT_TRUE(std::isfinite(stats.train_loss));
}

TEST(XnorPath, MatchesSignedDotProduct) {
  Rng rng(14);
  std::vector<int> w(64), a(64);
  std::int64_t ref = 0;
  for (std::size_t i = 0; i < 64; ++i) {
    w[i] = rng.coin() ? 1 : 0;
    a[i] = rng.coin() ? 1 : 0;
    ref += (w[i] == 1 ? 1 : -1) * (a[i] == 1 ? 1 : -1);
  }
  pim::EventCounts ev;
  EXPECT_EQ(pim::pim_xnor_dot_product(w, a, ev), ref);
  // No shift-accumulator levels engage on the binary path.
  EXPECT_EQ(ev.acc4_ops, 0);
  EXPECT_EQ(ev.acc8_ops, 0);
  EXPECT_EQ(ev.cell_mults, 64);
}

TEST(XnorPath, RejectsNonBits) {
  pim::EventCounts ev;
  EXPECT_THROW(pim::pim_xnor_dot_product({2}, {1}, ev), std::invalid_argument);
  EXPECT_THROW(pim::pim_xnor_dot_product({1, 0}, {1}, ev), std::invalid_argument);
}

TEST(XnorPath, AllAgreeAndAllDisagree) {
  pim::EventCounts ev;
  EXPECT_EQ(pim::pim_xnor_dot_product({1, 1, 1}, {1, 1, 1}, ev), 3);
  EXPECT_EQ(pim::pim_xnor_dot_product({0, 0, 0}, {1, 1, 1}, ev), -3);
}

TEST(Checkpoint, CorruptFileRejected) {
  const std::string path = ::testing::TempDir() + "/ckpt_bad.adq";
  {
    std::ofstream out(path, std::ios::binary);
    out << "definitely not a checkpoint";
  }
  Rng rng(11);
  models::VggConfig cfg;
  cfg.width_mult = 0.0625;
  auto model = models::build_vgg19(cfg, rng);
  EXPECT_THROW(load_parameters(model->parameters(), path), std::runtime_error);
  EXPECT_THROW(load_parameters(model->parameters(), "/nonexistent/x.adq"),
               std::runtime_error);
}

}  // namespace
}  // namespace adq
