// Graph IR + pass pipeline tests.
//
// The refactor's acceptance bar is that the graph pipeline is a drop-in
// replacement for the old dynamic_cast lowering chain: a byte-for-byte
// identical serialized plan (and therefore bit-identical logits) for VGG19
// and ResNet18 on fixed seeds. The old compiler's walk is preserved below
// as `legacy_compile` — the reference this suite diffs against. On top of
// that: verifier rejections (cycles, arity, shape mismatches), pass
// idempotence, the depthwise-separable path the old compiler could not
// express, standalone-quantize lowering, and the to_dot / ADQ_DUMP_GRAPH
// dumpers.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "graph/build.h"
#include "graph/graph.h"
#include "graph/passes.h"
#include "infer/engine.h"
#include "infer/plan.h"
#include "infer/plan_io.h"
#include "models/mobilenet.h"
#include "models/resnet.h"
#include "models/vgg.h"
#include "nn/batchnorm.h"
#include "nn/depthwise.h"
#include "nn/flatten.h"
#include "nn/init.h"
#include "nn/pool.h"
#include "nn/relu.h"
#include "nn/residual.h"
#include "nn/sequential.h"
#include "plan_test_util.h"
#include "quant/fake_quantizer.h"
#include "quant/quantizer.h"
#include "tensor/ops.h"
#include "tensor/rng.h"

namespace adq::infer {
namespace {

// ---------------------------------------------------------------------------
// The pre-refactor compiler, verbatim: the dynamic_cast peek-chain that
// used to live in src/infer/plan.cpp. Kept here as the golden reference
// the graph pipeline must reproduce byte for byte.
// ---------------------------------------------------------------------------

InferencePlan legacy_compile(models::QuantizableModel& model,
                             const CompileOptions& opts = {}) {
  InferencePlan plan;
  plan.model_name = model.name();
  nn::Sequential& net = model.net();

  auto peek = [&](std::size_t j) -> nn::Layer* {
    return j < net.size() ? &net.at(j) : nullptr;
  };
  auto emit_gemm = [&](GemmLayerPlan layer, OpKind kind) {
    plan.layers.push_back(std::move(layer));
    OpPlan op;
    op.kind = kind;
    op.layer = static_cast<int>(plan.layers.size()) - 1;
    plan.ops.push_back(op);
  };

  std::size_t i = 0;
  while (i < net.size()) {
    nn::Layer& L = net.at(i);
    if (auto* conv = dynamic_cast<nn::Conv2d*>(&L)) {
      auto* bn = dynamic_cast<nn::BatchNorm2d*>(peek(i + 1));
      std::size_t j = i + 1 + (bn != nullptr ? 1 : 0);
      auto* relu = dynamic_cast<nn::ReLU*>(peek(j));
      if (relu != nullptr) ++j;
      if (conv->bypassed()) {
        if (relu != nullptr) {
          OpPlan op;
          op.kind = OpKind::kReLU;
          plan.ops.push_back(op);
        }
      } else {
        emit_gemm(plan_conv(*conv, bn, relu != nullptr, opts), OpKind::kGemm);
      }
      i = j;
    } else if (auto* block = dynamic_cast<nn::ResidualBlock*>(&L)) {
      // Plan-v3 residual shape: the skip is pushed unquantized (it aliases
      // the fork under the arena executor) and the Fig-2 skip quantizer
      // runs as a deferred kQuantizeSkip just before the add — it reads
      // the untouched fork value either way, so the emitted semantics
      // match the old eager PushSkip(bits) emission bit for bit.
      const quant::FakeQuantizer& sq = block->skip_quantizer();
      OpPlan push;
      push.kind = OpKind::kPushSkip;
      plan.ops.push_back(push);
      emit_gemm(plan_conv(block->conv1(), &block->bn1(), /*fuse_relu=*/true,
                          opts),
                OpKind::kGemm);
      emit_gemm(plan_conv(block->conv2(), &block->bn2(), /*fuse_relu=*/false,
                          opts),
                OpKind::kGemm);
      if (sq.enabled() && sq.bits() < 24) {
        OpPlan quant;
        quant.kind = OpKind::kQuantizeSkip;
        quant.skip_bits = sq.bits();
        plan.ops.push_back(quant);
      }
      if (block->has_downsample()) {
        emit_gemm(plan_conv(*block->downsample_conv(), block->downsample_bn(),
                            /*fuse_relu=*/false, opts),
                  OpKind::kSkipGemm);
      }
      OpPlan add;
      add.kind = OpKind::kAddSkipRelu;
      add.mask_channels = block->active_out_channels();
      plan.ops.push_back(add);
      ++i;
    } else if (auto* lin = dynamic_cast<nn::Linear*>(&L)) {
      auto* relu = dynamic_cast<nn::ReLU*>(peek(i + 1));
      emit_gemm(plan_linear(*lin, relu != nullptr, opts), OpKind::kGemm);
      i += relu != nullptr ? 2 : 1;
    } else if (auto* pool = dynamic_cast<nn::MaxPool2d*>(&L)) {
      OpPlan op;
      op.kind = OpKind::kMaxPool;
      op.pool_kernel = pool->kernel();
      op.pool_stride = pool->stride();
      plan.ops.push_back(op);
      ++i;
    } else if (dynamic_cast<nn::GlobalAvgPool*>(&L) != nullptr) {
      OpPlan op;
      op.kind = OpKind::kGlobalAvgPool;
      plan.ops.push_back(op);
      ++i;
    } else if (dynamic_cast<nn::Flatten*>(&L) != nullptr) {
      OpPlan op;
      op.kind = OpKind::kFlatten;
      plan.ops.push_back(op);
      ++i;
    } else if (dynamic_cast<nn::ReLU*>(&L) != nullptr) {
      OpPlan op;
      op.kind = OpKind::kReLU;
      plan.ops.push_back(op);
      ++i;
    } else {
      throw std::invalid_argument("legacy compile: unsupported layer '" +
                                  L.name() + "'");
    }
  }
  return plan;
}

std::string to_bytes(const InferencePlan& plan) {
  std::ostringstream out(std::ios::binary);
  save_plan(plan, out);
  return out.str();
}

// The legacy reference predates the static memory planner, so byte
// comparisons against it are done with the (derivable) arena annotations
// stripped; logits are compared on the full plan — the arena executor must
// reproduce the heap reference bit for bit.
using testutil::without_memory_plan;

void expect_bit_identical_logits(const InferencePlan& a,
                                 const InferencePlan& b, const Tensor& x) {
  const IntInferenceEngine ea(a), eb(b);
  const Tensor ya = ea.forward(x);
  const Tensor yb = eb.forward(x);
  ASSERT_EQ(ya.shape(), yb.shape());
  for (std::int64_t i = 0; i < ya.numel(); ++i) {
    ASSERT_EQ(ya[i], yb[i]) << "logit " << i;
  }
}

void expect_matches_legacy(models::QuantizableModel& model, const Tensor& x) {
  // The legacy reference also predates activation compression: packed
  // plans reorder the residual skip quantizer (eager, right after the
  // push), so the byte diff is run with ADQ_ACT_BITS pinned off. Packed
  // executions are compared against the off-mode plan by the
  // GoldenLogits-style parity suites instead.
  const testutil::ScopedEnv act_off("ADQ_ACT_BITS", "off");
  const InferencePlan legacy = legacy_compile(model);
  const InferencePlan graph = compile(model);
  EXPECT_EQ(to_bytes(without_memory_plan(graph)), to_bytes(legacy));
  // graph executes on the planned arena, legacy on heap tensors — the
  // slot-based executor's acceptance bar is bit-identical logits.
  expect_bit_identical_logits(graph, legacy, x);
}

// ---------------------------------------------------------------------------
// Verifier and shape inference on hand-built graphs.
// ---------------------------------------------------------------------------

// input([C, H, W]) -> relu, returning (graph, relu id). No output yet.
graph::Graph chw_graph(std::int64_t c, std::int64_t h, std::int64_t w) {
  graph::Graph g("hand");
  graph::Node in;
  in.kind = graph::NodeKind::kInput;
  in.name = "input";
  in.type = graph::ValueType::chw(c, h, w);
  g.set_input(g.add(std::move(in)));
  return g;
}

int add_node(graph::Graph& g, graph::NodeKind kind, const std::string& name,
             std::vector<int> inputs) {
  graph::Node n;
  n.kind = kind;
  n.name = name;
  n.inputs = std::move(inputs);
  return g.add(std::move(n));
}

void finish(graph::Graph& g, int tail) {
  g.set_output(add_node(g, graph::NodeKind::kOutput, "output", {tail}));
}

TEST(GraphVerifier, RejectsCycle) {
  graph::Graph g = chw_graph(4, 8, 8);
  const int a = add_node(g, graph::NodeKind::kReLU, "a", {});
  const int b = add_node(g, graph::NodeKind::kReLU, "b", {a});
  g.at(a).inputs = {b};  // a <-> b
  finish(g, b);
  try {
    graph::verify(g);
    FAIL() << "cycle accepted";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("cycle"), std::string::npos)
        << e.what();
  }
}

TEST(GraphVerifier, RejectsWrongArity) {
  graph::Graph g = chw_graph(4, 8, 8);
  // A residual add with a single operand.
  const int add = add_node(g, graph::NodeKind::kAdd, "add", {g.input()});
  finish(g, add);
  EXPECT_THROW(graph::verify(g), std::invalid_argument);
  // The full pipeline (and standalone shape inference) must reject it with
  // the same clean error, never read past the short input list.
  EXPECT_THROW(graph::legalize(g), std::invalid_argument);
  EXPECT_THROW(graph::infer_shapes(g), std::invalid_argument);
}

TEST(GraphVerifier, RejectsDanglingEdge) {
  graph::Graph g = chw_graph(4, 8, 8);
  const int r = add_node(g, graph::NodeKind::kReLU, "r", {g.input()});
  finish(g, r);
  g.at(r).inputs = {97};  // points past the node table
  EXPECT_THROW(graph::verify(g), std::runtime_error);
}

TEST(GraphShapes, RejectsMismatchedAddOperands) {
  graph::Graph g = chw_graph(4, 8, 8);
  // Branch 1 halves the spatial extent, branch 2 keeps it — the join must
  // be rejected.
  const int pool = add_node(g, graph::NodeKind::kMaxPool, "pool", {g.input()});
  const int relu = add_node(g, graph::NodeKind::kReLU, "relu", {g.input()});
  const int add = add_node(g, graph::NodeKind::kAdd, "add", {relu, pool});
  finish(g, add);
  try {
    graph::infer_shapes(g);
    FAIL() << "mismatched add accepted";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("disagree"), std::string::npos)
        << e.what();
  }
}

TEST(GraphShapes, InfersThroughPoolAndFlatten) {
  graph::Graph g = chw_graph(4, 8, 8);
  const int pool = add_node(g, graph::NodeKind::kMaxPool, "pool", {g.input()});
  const int flat = add_node(g, graph::NodeKind::kFlatten, "flat", {pool});
  finish(g, flat);
  graph::infer_shapes(g);
  graph::verify(g);
  EXPECT_EQ(g.at(pool).type, graph::ValueType::chw(4, 4, 4));
  EXPECT_EQ(g.at(flat).type, graph::ValueType::features(64));
  EXPECT_EQ(g.at(g.output()).type, graph::ValueType::features(64));
}

// ---------------------------------------------------------------------------
// Pass behaviour and idempotence on a real model graph.
// ---------------------------------------------------------------------------

std::unique_ptr<models::QuantizableModel> small_vgg(bool batchnorm,
                                                    std::uint64_t seed) {
  Rng rng(seed);
  models::VggConfig cfg;
  cfg.width_mult = 0.0625;
  cfg.num_classes = 10;
  cfg.use_batchnorm = batchnorm;
  auto model = models::build_vgg19(cfg, rng);
  model->set_training(false);
  const int pattern[] = {8, 4, 2};
  for (int i = 0; i < model->unit_count(); ++i) {
    if (!model->unit(i).frozen) model->unit(i).set_bits(pattern[i % 3]);
  }
  return model;
}

TEST(GraphPasses, PipelinePassesAreIdempotent) {
  auto model = small_vgg(/*batchnorm=*/true, 51);
  graph::Graph g = graph::build_from_model(*model);
  graph::infer_shapes(g);
  graph::verify(g);

  EXPECT_TRUE(graph::fold_batchnorm(g));
  EXPECT_FALSE(graph::fold_batchnorm(g));
  EXPECT_TRUE(graph::fuse_relu_epilogue(g));
  EXPECT_FALSE(graph::fuse_relu_epilogue(g));
  EXPECT_TRUE(graph::elide_quantize(g));
  EXPECT_FALSE(graph::elide_quantize(g));
  EXPECT_FALSE(graph::eliminate_dead_nodes(g));

  graph::infer_shapes(g);
  graph::verify(g);
  // The legalized graph and a legalize() of a fresh build lower to the
  // same plan — the pipeline IS those passes in that order. plan_memory is
  // deterministic, so the memory annotations agree byte for byte too.
  graph::plan_memory(g);
  EXPECT_EQ(to_bytes(lower_to_plan(g)), to_bytes(compile(*model)));
}

TEST(GraphPasses, DeadNodesAreEliminated) {
  graph::Graph g = chw_graph(4, 8, 8);
  const int r = add_node(g, graph::NodeKind::kReLU, "r", {g.input()});
  // A pool that nothing consumes.
  add_node(g, graph::NodeKind::kMaxPool, "orphan", {r});
  finish(g, r);
  EXPECT_TRUE(graph::eliminate_dead_nodes(g));
  EXPECT_FALSE(graph::eliminate_dead_nodes(g));
  EXPECT_EQ(g.live_count(), 3);  // input, relu, output
  graph::infer_shapes(g);
  graph::verify(g);
}

TEST(GraphPasses, SkipQuantizerSurvivesElision) {
  // The Fig-2 skip quantizer must stay an explicit op (the downsample conv
  // behind it re-quantizes at the same bits in training — a genuine double
  // quantization), while every per-layer input quantizer is absorbed.
  Rng rng(77);
  models::ResNetConfig cfg;
  cfg.width_mult = 0.0625;
  cfg.num_classes = 10;
  cfg.input_size = 16;
  auto model = models::build_resnet18(cfg, rng);
  model->set_training(false);
  for (int i = 0; i < model->unit_count(); ++i) {
    if (!model->unit(i).frozen) model->unit(i).set_bits(4);
  }
  graph::Graph g = graph::build_from_model(*model);
  graph::legalize(g);
  int quantize_nodes = 0;
  for (int i = 0; i < g.size(); ++i) {
    if (!g.at(i).dead && g.at(i).kind == graph::NodeKind::kQuantize) {
      ++quantize_nodes;
    }
  }
  EXPECT_EQ(quantize_nodes, 8);  // one skip quantizer per residual block
}

// ---------------------------------------------------------------------------
// Byte-identical plans vs the pre-refactor compiler.
// ---------------------------------------------------------------------------

TEST(GraphLowering, VggPlanIsByteIdenticalToLegacyCompiler) {
  for (const bool batchnorm : {true, false}) {
    auto model = small_vgg(batchnorm, 60 + batchnorm);
    Rng rng(61);
    Tensor x(Shape{6, 3, 32, 32});
    rng.fill_normal(x, 0.0f, 1.0f);
    expect_matches_legacy(*model, x);
  }
}

TEST(GraphLowering, PrunedAndRemovedVggStillMatchesLegacy) {
  auto model = small_vgg(/*batchnorm=*/true, 62);
  // Eqn-5 channel masks on a few units...
  std::vector<std::int64_t> channels = model->channel_policy();
  channels[2] = std::max<std::int64_t>(1, channels[2] / 2);
  channels[5] = std::max<std::int64_t>(1, channels[5] - 1);
  model->apply_channel_policy(channels);
  // ...and a Table II iter-2a removed unit (shape-preserving conv2).
  model->remove_unit(1);

  Rng rng(63);
  Tensor x(Shape{4, 3, 32, 32});
  rng.fill_normal(x, 0.0f, 1.0f);
  expect_matches_legacy(*model, x);
}

TEST(GraphLowering, ResNetPlanIsByteIdenticalToLegacyCompiler) {
  Rng rng(64);
  models::ResNetConfig cfg;
  cfg.width_mult = 0.0625;
  cfg.num_classes = 10;
  cfg.input_size = 16;
  auto model = models::build_resnet18(cfg, rng);
  model->set_training(false);
  for (int i = 0; i < model->unit_count(); ++i) {
    if (!model->unit(i).frozen) model->unit(i).set_bits(i % 2 == 0 ? 8 : 4);
  }
  Tensor x(Shape{5, 3, 16, 16});
  rng.fill_normal(x, 0.0f, 1.0f);
  expect_matches_legacy(*model, x);
}

TEST(GraphLowering, WideBitResNetWithElidedSkipQuantizerMatchesLegacy) {
  // At >= 24 bits every skip quantizer is an identity and elision removes
  // it, so an identity-skip add lands DIRECTLY on the shared fork — which
  // for the first block is the stem conv node. Lowering must recognise the
  // fork (it feeds the main branch too) rather than treating it as a
  // downsample conv; the regression duplicated the stem layer and emitted
  // an extra SkipGemm.
  Rng rng(68);
  models::ResNetConfig cfg;
  cfg.width_mult = 0.0625;
  cfg.num_classes = 10;
  cfg.input_size = 16;
  auto model = models::build_resnet18(cfg, rng);
  model->set_training(false);
  for (int i = 0; i < model->unit_count(); ++i) {
    if (!model->unit(i).frozen) model->unit(i).set_bits(24);
  }
  const InferencePlan plan = compile(*model);
  EXPECT_EQ(plan.layers.size(), 21u);  // 17 convs + 3 downsamples + fc
  int skip_gemms = 0;
  for (const OpPlan& op : plan.ops) skip_gemms += op.kind == OpKind::kSkipGemm;
  EXPECT_EQ(skip_gemms, 3);

  Tensor x(Shape{4, 3, 16, 16});
  rng.fill_normal(x, 0.0f, 1.0f);
  expect_matches_legacy(*model, x);
}

TEST(GraphLowering, StandaloneQuantizeLowersToExplicitOp) {
  graph::Graph g = chw_graph(3, 6, 6);
  graph::Node q;
  q.kind = graph::NodeKind::kQuantize;
  q.name = "q";
  q.bits = 5;
  q.inputs = {g.input()};
  const int qid = g.add(std::move(q));
  finish(g, qid);
  graph::legalize(g);

  const InferencePlan plan = lower_to_plan(g);
  ASSERT_EQ(plan.ops.size(), 1u);
  EXPECT_EQ(static_cast<int>(plan.ops[0].kind),
            static_cast<int>(OpKind::kQuantize));
  EXPECT_EQ(plan.ops[0].skip_bits, 5);

  Rng rng(65);
  Tensor x(Shape{2, 3, 6, 6});
  rng.fill_normal(x, 0.0f, 1.0f);
  const IntInferenceEngine engine(plan);
  const Tensor got = engine.forward(x);
  const Tensor want = quant::fake_quantize(x, 5);
  ASSERT_EQ(got.shape(), want.shape());
  for (std::int64_t i = 0; i < got.numel(); ++i) ASSERT_EQ(got[i], want[i]);
}

// ---------------------------------------------------------------------------
// Depthwise-separable path — the topology the old compiler rejected.
// ---------------------------------------------------------------------------

float parity_tol(const Tensor& ref) {
  const float mag =
      std::max(std::abs(min_value(ref)), std::abs(max_value(ref)));
  return 1e-4f * std::max(mag, 1.0f);
}

float max_abs_diff(const Tensor& a, const Tensor& b) {
  EXPECT_EQ(a.shape(), b.shape());
  float worst = 0.0f;
  for (std::int64_t i = 0; i < a.numel(); ++i) {
    worst = std::max(worst, std::abs(a[i] - b[i]));
  }
  return worst;
}

TEST(GraphDepthwise, IntegerParityPerBitwidth) {
  for (int bits : {8, 4, 2}) {
    Rng rng(300 + bits);
    nn::DepthwiseConv2d conv(6, 3, 1, 1, /*use_bias=*/true, "dw");
    nn::init_depthwise(conv, rng);
    rng.fill_uniform(conv.bias()->value, -0.3f, 0.3f);
    conv.set_bits(bits);
    conv.set_training(false);

    Tensor x(Shape{3, 6, 9, 9});
    rng.fill_normal(x, 0.1f, 1.0f);
    x = relu(x);  // post-ReLU range: exact zero on the grid (as in-network)
    const Tensor ref = conv.forward(x);

    const GemmLayerPlan l = plan_depthwise(conv, nullptr, /*fuse_relu=*/false);
    ASSERT_EQ(l.path, ExecPath::kInteger) << "bits " << bits;
    ASSERT_TRUE(l.is_depthwise);
    const Tensor out = run_gemm_layer(l, x);
    EXPECT_LE(max_abs_diff(out, ref), parity_tol(ref)) << "bits " << bits;
  }
}

TEST(GraphDepthwise, ParityWithBatchNormFoldReluAndStride) {
  Rng rng(310);
  nn::DepthwiseConv2d conv(5, 3, 2, 1, /*use_bias=*/false, "dw");
  nn::init_depthwise(conv, rng);
  conv.set_bits(8);
  nn::BatchNorm2d bn(5);
  rng.fill_uniform(bn.gamma().value, 0.5f, 1.5f);
  rng.fill_uniform(bn.beta().value, -0.2f, 0.2f);
  bn.set_training(true);
  for (int i = 0; i < 3; ++i) {
    Tensor warm(Shape{4, 5, 8, 8});
    rng.fill_normal(warm, 0.4f, 1.7f);
    bn.forward(warm);
  }
  conv.set_training(false);
  bn.set_training(false);

  Tensor x(Shape{2, 5, 8, 8});
  rng.fill_normal(x, 0.1f, 1.0f);
  x = relu(x);
  Tensor ref = relu(bn.forward(conv.forward(x)));

  const GemmLayerPlan l = plan_depthwise(conv, &bn, /*fuse_relu=*/true);
  const Tensor out = run_gemm_layer(l, x);
  EXPECT_LE(max_abs_diff(out, ref), parity_tol(ref));
}

TEST(GraphDepthwise, PrunedChannelsAreZero) {
  Rng rng(320);
  nn::DepthwiseConv2d conv(8, 3, 1, 1, /*use_bias=*/true, "dw");
  nn::init_depthwise(conv, rng);
  conv.set_bits(8);
  conv.set_active_out_channels(5);
  conv.set_training(false);

  Tensor x(Shape{2, 8, 6, 6});
  rng.fill_normal(x, 0.1f, 1.0f);
  x = relu(x);
  const Tensor ref = conv.forward(x);
  const GemmLayerPlan l = plan_depthwise(conv, nullptr, /*fuse_relu=*/false);
  const Tensor out = run_gemm_layer(l, x);
  EXPECT_LE(max_abs_diff(out, ref), parity_tol(ref));
  for (std::int64_t b = 0; b < 2; ++b) {
    for (std::int64_t c = 5; c < 8; ++c) {
      EXPECT_EQ(out.at(b, c, 3, 3), 0.0f);
    }
  }
}

double prediction_agreement(const std::vector<std::int64_t>& a,
                            const std::vector<std::int64_t>& b) {
  EXPECT_EQ(a.size(), b.size());
  std::size_t same = 0;
  for (std::size_t i = 0; i < a.size(); ++i) same += a[i] == b[i];
  return a.empty() ? 0.0
                   : static_cast<double>(same) / static_cast<double>(a.size());
}

TEST(GraphDepthwise, MobileNetCompilesServesAndRoundTrips) {
  Rng rng(330);
  models::MobileNetConfig cfg;
  cfg.width_mult = 0.25;
  cfg.num_classes = 10;
  auto model = models::build_mobilenet_small(cfg, rng);
  ASSERT_EQ(model->unit_count(), models::kMobileNetSmallUnits);
  model->set_training(false);
  const int pattern[] = {8, 4, 8, 2};
  for (int i = 0; i < model->unit_count(); ++i) {
    if (!model->unit(i).frozen) model->unit(i).set_bits(pattern[i % 4]);
  }

  Tensor x(Shape{24, 3, 32, 32});
  rng.fill_normal(x, 0.0f, 1.0f);
  const Tensor ref_logits = model->forward(x);

  const InferencePlan plan = compile(*model);
  int depthwise_layers = 0;
  for (const GemmLayerPlan& l : plan.layers) depthwise_layers += l.is_depthwise;
  EXPECT_EQ(depthwise_layers, 5);
  // 10 of 12 units quantize (frozen stem/fc run in float); mixed 8/4/2
  // grids keep agreement well above chance but below the int8-only bar
  // (same rationale as InferEngine.VggMixedPrecisionAgreement).
  EXPECT_EQ(plan.integer_layer_count(), 10);

  const IntInferenceEngine engine(plan);
  EXPECT_GE(prediction_agreement(engine.predict(x), argmax_rows(ref_logits)),
            0.7);

  // v2 round trip: depthwise layers serialize and execute identically.
  const std::string bytes = to_bytes(plan);
  std::istringstream in(bytes, std::ios::binary);
  const InferencePlan loaded = load_plan(in);
  EXPECT_EQ(to_bytes(loaded), bytes);
  expect_bit_identical_logits(plan, loaded, x);
}

TEST(GraphDepthwise, MobileNetUniformInt8MatchesFakeQuant) {
  Rng rng(331);
  models::MobileNetConfig cfg;
  cfg.width_mult = 0.25;
  cfg.num_classes = 10;
  auto model = models::build_mobilenet_small(cfg, rng);
  model->set_training(false);
  for (int i = 0; i < model->unit_count(); ++i) {
    if (!model->unit(i).frozen) model->unit(i).set_bits(8);
  }
  Tensor x(Shape{32, 3, 32, 32});
  rng.fill_normal(x, 0.0f, 1.0f);
  const Tensor ref_logits = model->forward(x);
  const IntInferenceEngine engine(compile(*model));
  EXPECT_GE(prediction_agreement(engine.predict(x), argmax_rows(ref_logits)),
            0.95);
}

// ---------------------------------------------------------------------------
// Dot dumper and the ADQ_DUMP_GRAPH hook.
// ---------------------------------------------------------------------------

TEST(GraphDot, RendersNodesAndEdges) {
  auto model = small_vgg(/*batchnorm=*/true, 70);
  graph::Graph g = graph::build_from_model(*model);
  graph::legalize(g);
  const std::string dot = to_dot(g);
  EXPECT_NE(dot.find("digraph \"vgg19\""), std::string::npos);
  EXPECT_NE(dot.find("conv conv1"), std::string::npos);
  EXPECT_NE(dot.find("+relu"), std::string::npos);  // fused epilogue shown
  EXPECT_NE(dot.find("->"), std::string::npos);
}

TEST(GraphDot, DumpEnvWritesEveryStage) {
  const std::string dir = testing::TempDir() + "adq_dump_graph_test";
  std::remove((dir + "/vgg19_00_built.dot").c_str());
  ASSERT_EQ(0, std::system(("mkdir -p '" + dir + "'").c_str()));
  setenv("ADQ_DUMP_GRAPH", dir.c_str(), 1);
  auto model = small_vgg(/*batchnorm=*/true, 71);
  compile(*model);
  unsetenv("ADQ_DUMP_GRAPH");

  for (const char* stage :
       {"00_built", "01_verified", "02_bn_fold", "03_fuse_relu",
        "04_elide_quantize", "05_dce", "06_legal", "07_memplan"}) {
    const std::string path = dir + "/vgg19_" + stage + ".dot";
    std::ifstream in(path);
    EXPECT_TRUE(in.good()) << path;
    std::string first_line;
    std::getline(in, first_line);
    EXPECT_NE(first_line.find("digraph"), std::string::npos) << path;
  }
}

}  // namespace
}  // namespace adq::infer
