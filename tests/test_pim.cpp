// Tests for the PIM accelerator: Table IV energies, functional exactness of
// the bit-serial array + shift-accumulator pipeline against integer
// reference MACs, layer mapping geometry, and the Table V/VI style energy
// reductions.
#include <gtest/gtest.h>

#include <numeric>

#include "models/resnet.h"
#include "models/vgg.h"
#include "pim/accelerator.h"
#include "pim/energy_model.h"
#include "pim/mapper.h"
#include "tensor/rng.h"

namespace adq::pim {
namespace {

TEST(PimEnergy, TableFourConstants) {
  EXPECT_DOUBLE_EQ(pim_mac_energy_fj(2), 2.942);
  EXPECT_DOUBLE_EQ(pim_mac_energy_fj(4), 16.968);
  EXPECT_DOUBLE_EQ(pim_mac_energy_fj(8), 66.714);
  EXPECT_DOUBLE_EQ(pim_mac_energy_fj(16), 276.676);
  EXPECT_THROW(pim_mac_energy_fj(3), std::invalid_argument);
}

TEST(PimEnergy, OffGridBitsRoundUp) {
  EXPECT_DOUBLE_EQ(pim_mac_energy_for_bits_fj(3), 16.968);   // 3 -> 4
  EXPECT_DOUBLE_EQ(pim_mac_energy_for_bits_fj(5), 66.714);   // 5 -> 8
  EXPECT_DOUBLE_EQ(pim_mac_energy_for_bits_fj(1), 2.942);    // 1 -> 2
  EXPECT_DOUBLE_EQ(pim_mac_energy_for_bits_fj(22), 276.676); // 22 -> 16 (cap)
}

TEST(PimEnergy, EventModelMatchesTableFourWithinFivePercent) {
  for (int k : {2, 4, 8, 16}) {
    const double fitted = event_energy_fj(expected_mac_events(k));
    const double table = pim_mac_energy_fj(k);
    EXPECT_NEAR(fitted / table, 1.0, 0.05) << "k=" << k;
  }
}

TEST(PimEnergy, EventCountsAccumulate) {
  EventCounts a;
  a.cell_mults = 4;
  a.acc4_ops = 1;
  EventCounts b;
  b.cell_mults = 6;
  b.acc8_ops = 2;
  a += b;
  EXPECT_EQ(a.cell_mults, 10);
  EXPECT_EQ(a.acc4_ops, 1);
  EXPECT_EQ(a.acc8_ops, 2);
}

std::int64_t reference_dot(const std::vector<std::int64_t>& w,
                           const std::vector<std::int64_t>& a) {
  std::int64_t s = 0;
  for (std::size_t i = 0; i < w.size(); ++i) s += w[i] * a[i];
  return s;
}

class PimFunctional : public ::testing::TestWithParam<int> {};

TEST_P(PimFunctional, DotProductExactAtEveryGridPrecision) {
  // The defining property of the simulator: bit-serial array + shift-add
  // tree computes exactly the integer dot product, for every precision.
  const int bits = GetParam();
  Rng rng(100 + bits);
  const std::int64_t max = (std::int64_t{1} << bits) - 1;
  std::vector<std::int64_t> w(57), a(57);
  for (auto& v : w) v = rng.uniform_int(0, max);
  for (auto& v : a) v = rng.uniform_int(0, max);
  EventCounts ev;
  EXPECT_EQ(pim_dot_product(w, a, bits, ev), reference_dot(w, a));
  EXPECT_GT(ev.cell_mults, 0);
  EXPECT_GT(ev.decoder_reads, 0);
  EXPECT_GT(ev.acc4_ops, 0);
}

INSTANTIATE_TEST_SUITE_P(GridPrecisions, PimFunctional, ::testing::Values(2, 4, 8, 16));

TEST(PimArray, MultiOutputTileMatchesReference) {
  Rng rng(7);
  PimConfig cfg;
  cfg.rows = 32;
  cfg.cols = 32;
  PimArray array(cfg);
  const int bits = 4;
  const std::int64_t outputs = array.outputs_per_tile(bits);
  EXPECT_EQ(outputs, 8);
  std::vector<std::vector<std::int64_t>> w(static_cast<std::size_t>(outputs),
                                           std::vector<std::int64_t>(16));
  for (auto& row : w) {
    for (auto& v : row) v = rng.uniform_int(0, 15);
  }
  std::vector<std::int64_t> act(16);
  for (auto& v : act) v = rng.uniform_int(0, 15);
  array.load_weights(w, bits);
  EventCounts ev;
  const auto results = array.compute(act, ev);
  for (std::int64_t o = 0; o < outputs; ++o) {
    EXPECT_EQ(results[static_cast<std::size_t>(o)],
              reference_dot(w[static_cast<std::size_t>(o)], act));
  }
}

TEST(PimArray, AccumulatorLevelsFollowPrecision) {
  // 2-bit layers stop at ACC4 (blue path in Fig 5); 4-bit engages ACC8;
  // 8-bit and up engage ACC16.
  Rng rng(8);
  std::vector<std::int64_t> w{1, 2, 3}, a{1, 0, 1};
  EventCounts e2, e4, e8;
  pim_dot_product(w, a, 2, e2);
  pim_dot_product(w, a, 4, e4);
  pim_dot_product(w, a, 8, e8);
  EXPECT_EQ(e2.acc8_ops, 0);
  EXPECT_EQ(e2.acc16_ops, 0);
  EXPECT_GT(e4.acc8_ops, 0);
  EXPECT_EQ(e4.acc16_ops, 0);
  EXPECT_GT(e8.acc16_ops, 0);
}

TEST(PimArray, CellEventsScaleQuadraticallyWithBits) {
  std::vector<std::int64_t> w{1, 1, 1, 1}, a{1, 1, 1, 1};
  EventCounts e2, e4;
  pim_dot_product(w, a, 2, e2);
  pim_dot_product(w, a, 4, e4);
  EXPECT_EQ(e4.cell_mults, 4 * e2.cell_mults);  // k^2 scaling
}

TEST(PimArray, RejectsInvalidInputs) {
  PimArray array;
  std::vector<std::vector<std::int64_t>> w{{1, 2}};
  EXPECT_THROW(array.load_weights(w, 3), std::invalid_argument);  // off grid
  array.load_weights(w, 2);
  EventCounts ev;
  EXPECT_THROW(array.compute({1}, ev), std::invalid_argument);
  std::vector<std::vector<std::int64_t>> w_bad{{1, 9}};  // 9 > 2-bit max
  EXPECT_THROW(array.load_weights(w_bad, 2), std::invalid_argument);
}

TEST(PimArray, TilesAcrossRowLimit) {
  // Fan-in larger than the array rows must tile and still be exact.
  Rng rng(9);
  PimConfig cfg;
  cfg.rows = 16;
  std::vector<std::int64_t> w(100), a(100);
  for (auto& v : w) v = rng.uniform_int(0, 3);
  for (auto& v : a) v = rng.uniform_int(0, 3);
  EventCounts ev;
  EXPECT_EQ(pim_dot_product(w, a, 2, ev, cfg), reference_dot(w, a));
}

TEST(Mapper, LayerGeometry) {
  models::LayerSpec l;
  l.name = "conv";
  l.in_channels = l.active_in = 64;
  l.out_channels = l.active_out = 128;
  l.kernel = 3;
  l.in_size = l.out_size = 16;
  l.bits = 5;  // rounds to 8 on the PIM grid
  PimEnergyOptions matched;
  matched.streaming = ActivationStreaming::kMatched;
  const LayerMapping m = map_layer(l, {}, matched);
  EXPECT_EQ(m.hardware_bits, 8);
  EXPECT_EQ(m.row_tiles, (64 * 9 + 127) / 128);
  EXPECT_EQ(m.col_tiles, (128 + 15) / 16);  // 128 cols / 8 bits = 16 outputs
  EXPECT_EQ(m.serial_cycles, 8);
  EXPECT_NEAR(m.energy_uj, static_cast<double>(l.macs()) * 66.714 * 1e-9, 1e-9);
  // Full-16 streaming: 16 cycles and 16/8 = 2x the per-MAC energy.
  const LayerMapping f = map_layer(l);
  EXPECT_EQ(f.serial_cycles, 16);
  EXPECT_NEAR(f.mac_energy_fj, 2.0 * m.mac_energy_fj, 1e-9);
}

TEST(Mapper, MatchedStreamingIsMoreOptimisticThanFull16) {
  // With matched k-bit activations the mixed VGG19 looks ~17x cheaper; the
  // paper's published 5.12x implies full-width activation streaming (see
  // mapper.h). Both modes agree on the 16-bit baseline.
  models::ModelSpec spec = models::vgg19_spec(models::VggConfig{});
  const std::vector<int> paper_bits{16, 4, 5, 4, 3, 2, 2, 2, 3,
                                    3,  3, 4, 3, 3, 3, 3, 16};
  spec.apply_bits(quant::BitWidthPolicy(paper_bits));
  const models::ModelSpec base = spec.with_uniform_bits(16);
  PimEnergyOptions matched;
  matched.streaming = ActivationStreaming::kMatched;
  const double red_full16 = pim_energy_reduction(spec, base);
  const double red_matched = pim_energy_reduction(spec, base, {}, matched);
  EXPECT_GT(red_matched, 2.0 * red_full16);
  EXPECT_NEAR(pim_energy(base).total_uj,
              pim_energy(base, {}, matched).total_uj, 1e-9);
}

TEST(Mapper, PaperTable5FullPrecisionVgg19) {
  // Table V: VGG19 full-precision (16-bit) on CIFAR-10 consumes 110.154 uJ.
  // That equals N_MAC * E_MAC|16 — our spec's MAC count must reproduce it
  // within a few percent.
  const models::ModelSpec spec = models::vgg19_spec(models::VggConfig{});
  const PimEnergyReport r = pim_energy(spec.with_uniform_bits(16));
  EXPECT_NEAR(r.total_uj, 110.154, 0.05 * 110.154);
}

TEST(Mapper, PaperTable5MixedPrecisionVgg19) {
  // Table V mixed-precision VGG19: 21.506 uJ, 5.12x reduction.
  models::ModelSpec spec = models::vgg19_spec(models::VggConfig{});
  const std::vector<int> paper_bits{16, 4, 5, 4, 3, 2, 2, 2, 3,
                                    3,  3, 4, 3, 3, 3, 3, 16};
  spec.apply_bits(quant::BitWidthPolicy(paper_bits));
  const double reduction =
      pim_energy_reduction(spec, spec.with_uniform_bits(16));
  EXPECT_GT(reduction, 4.0);
  EXPECT_LT(reduction, 6.5);
}

TEST(Mapper, PrunedNetworkOrdersOfMagnitudeCheaper) {
  // Table VI flavour: quantized + pruned VGG19 lands near 197x.
  models::ModelSpec spec = models::vgg19_spec(models::VggConfig{});
  const models::ModelSpec baseline = spec.with_uniform_bits(16);
  const std::vector<int> paper_bits{16, 4, 5, 4, 3, 2, 2, 2, 3,
                                    3,  3, 4, 3, 3, 3, 3, 16};
  spec.apply_bits(quant::BitWidthPolicy(paper_bits));
  std::vector<std::int64_t> ch{19, 22, 38, 24, 45, 37, 44, 54,
                               103, 126, 150, 125, 122, 112, 111, 8};
  ch.push_back(10);
  spec.apply_channels(ch);
  const double reduction = pim_energy_reduction(spec, baseline);
  EXPECT_GT(reduction, 50.0);
  EXPECT_LT(reduction, 500.0);
}

TEST(Mapper, WholeNetworkReportCoversAllLayers) {
  const models::ModelSpec spec = models::resnet18_spec(models::ResNetConfig{});
  const PimEnergyReport r = pim_energy(spec);
  EXPECT_EQ(r.layers.size(), spec.layers.size());
  double sum = 0.0;
  for (const LayerMapping& m : r.layers) sum += m.energy_uj;
  EXPECT_NEAR(sum, r.total_uj, 1e-9);
}

}  // namespace
}  // namespace adq::pim
